//! ASCII space-time diagrams: the paper's Figure 1, reproduced from a
//! recorded [`Trace`].
//!
//! Processes are vertical lanes, time flows downward one recorded step per
//! row. Operation intervals are drawn `┌ call … │ … └ return`, message
//! deliveries as horizontal arrows from the sender's lane into the
//! receiver's (`●──▶`), with the message text in the right margin. Random
//! choices, preamble completions, and crashes get point markers in their
//! lane.

use std::fmt::Write as _;

use blunt_sim::trace::{Trace, TraceEvent};

/// Layout knobs for [`space_time`].
#[derive(Clone, Copy, Debug)]
pub struct DiagramOptions {
    /// Columns per process lane (clamped to at least 8).
    pub lane_width: usize,
    /// Prefix each row with the event index.
    pub show_index: bool,
}

impl Default for DiagramOptions {
    fn default() -> DiagramOptions {
        DiagramOptions {
            lane_width: 24,
            show_index: true,
        }
    }
}

/// Renders `trace` as a space-time diagram over `n` process lanes.
///
/// The output has exactly `trace.len() + 2` lines: a lane header, a rule,
/// then one line per event. Process ids at or above `n` are clamped into the
/// last lane (the convention of [`Trace::timeline`]). `n` must be at least 1.
#[must_use]
pub fn space_time(trace: &Trace, n: usize, opts: &DiagramOptions) -> String {
    assert!(n >= 1, "need at least one process lane");
    blunt_obs::static_counter!("trace.diagram.renders").inc();
    let lane_w = opts.lane_width.max(8);
    let width = n * lane_w;
    // The lane spine: one column after the lane edge, so arrows into lane 0
    // still have a margin character.
    let spine = |p: usize| p * lane_w + 1;
    let lane = |p: blunt_core::ids::Pid| p.index().min(n - 1);
    let gutter = if opts.show_index { 5 } else { 0 };

    let mut out = String::new();
    let mut header = vec![' '; width];
    for p in 0..n {
        for (k, ch) in format!("p{p}").chars().enumerate() {
            if spine(p) + k < width {
                header[spine(p) + k] = ch;
            }
        }
    }
    let header: String = header.into_iter().collect();
    let _ = writeln!(out, "{:gutter$}{}", "", header.trim_end());
    let _ = writeln!(out, "{:gutter$}{}", "", "─".repeat(width));

    // Writes `text` into `row` inside lane `p`, truncating with `…` at the
    // lane boundary so it never bleeds into the next lane.
    let put_text = |row: &mut [char], p: usize, text: &str| {
        let start = spine(p) + 2;
        let end = ((p + 1) * lane_w - 1).min(row.len());
        for (col, ch) in (start..).zip(text.chars()) {
            if col >= end {
                row[end - 1] = '…';
                break;
            }
            row[col] = ch;
        }
    };

    let mut open = vec![false; n];
    for (i, ev) in trace.events().iter().enumerate() {
        let mut row = vec![' '; width];
        for (p, is_open) in open.iter().enumerate() {
            if *is_open {
                row[spine(p)] = '│';
            }
        }
        let mut margin = String::new();
        match ev {
            TraceEvent::Call {
                obj, method, arg, ..
            } => {
                let p = lane(ev.pid());
                row[spine(p)] = '┌';
                put_text(&mut row, p, &format!("call {method}({arg}) @{obj}"));
                open[p] = true;
            }
            TraceEvent::Return { val, .. } => {
                let p = lane(ev.pid());
                row[spine(p)] = '└';
                put_text(&mut row, p, &format!("ret {val}"));
                open[p] = false;
            }
            TraceEvent::Deliver { src, dst, label } => {
                let (a, b) = (spine(lane(*src)), spine(lane(*dst)));
                if a == b {
                    row[a] = '●';
                    put_text(&mut row, lane(*dst), &format!("self-deliver {label}"));
                } else {
                    let (lo, hi) = (a.min(b), a.max(b));
                    for cell in &mut row[lo + 1..hi] {
                        *cell = if *cell == '│' { '┼' } else { '─' };
                    }
                    row[a] = '●';
                    row[b] = if b > a { '▶' } else { '◀' };
                    margin = format!("  {src}→{dst}: {label}");
                }
            }
            TraceEvent::Internal { label, .. } => {
                let p = lane(ev.pid());
                row[spine(p)] = '•';
                put_text(&mut row, p, label);
            }
            TraceEvent::PreamblePassed { iteration, .. } => {
                let p = lane(ev.pid());
                row[spine(p)] = '✓';
                put_text(&mut row, p, &format!("preamble #{iteration}"));
            }
            TraceEvent::ProgramRandom {
                choices, chosen, ..
            } => {
                let p = lane(ev.pid());
                row[spine(p)] = '◇';
                put_text(&mut row, p, &format!("random({choices})→{chosen}"));
            }
            TraceEvent::ObjectRandom {
                choices, chosen, ..
            } => {
                let p = lane(ev.pid());
                row[spine(p)] = '◆';
                put_text(&mut row, p, &format!("random({choices})→{chosen} (obj)"));
            }
            TraceEvent::Crash { .. } => {
                let p = lane(ev.pid());
                row[spine(p)] = '✗';
                put_text(&mut row, p, "CRASH");
            }
        }
        let body: String = row.into_iter().collect();
        if opts.show_index {
            let _ = write!(out, "{i:>4} ");
        }
        if margin.is_empty() {
            let _ = writeln!(out, "{}", body.trim_end());
        } else {
            let _ = writeln!(out, "{body}{margin}");
        }
    }
    out
}

/// Renders a recorded [`History`] as a space-time diagram over `n` lanes.
///
/// Histories carry only call/return actions (no deliveries or random steps),
/// which is exactly what an online monitor has when it flags a violation
/// window: the concurrent operation intervals. Return actions are routed to
/// the lane of their matching call; returns whose call lies outside the
/// window are dropped (their lane is unknown).
///
/// [`History`]: blunt_core::history::History
#[must_use]
pub fn history_space_time(
    history: &blunt_core::history::History,
    n: usize,
    opts: &DiagramOptions,
) -> String {
    use blunt_core::history::Action;
    use blunt_core::ids::CallSite;

    let mut owner = std::collections::BTreeMap::new();
    let mut trace = Trace::new();
    let mut events = Vec::new();
    for a in history.actions() {
        match a {
            Action::Call {
                inv,
                pid,
                obj,
                method,
                arg,
            } => {
                owner.insert(*inv, *pid);
                events.push(TraceEvent::Call {
                    inv: *inv,
                    pid: *pid,
                    obj: *obj,
                    method: *method,
                    arg: arg.clone(),
                    site: CallSite::new(*pid, 0, 0),
                });
            }
            Action::Return { inv, val } => {
                if let Some(pid) = owner.get(inv) {
                    events.push(TraceEvent::Return {
                        inv: *inv,
                        pid: *pid,
                        val: val.clone(),
                    });
                }
            }
        }
    }
    trace.extend(events);
    space_time(&trace, n, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
    use blunt_core::value::Val;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.extend(vec![
            TraceEvent::Call {
                inv: InvId(1),
                pid: Pid(0),
                obj: ObjId(0),
                method: MethodId::WRITE,
                arg: Val::Int(5),
                site: CallSite::new(Pid(0), 0, 0),
            },
            TraceEvent::Deliver {
                src: Pid(0),
                dst: Pid(2),
                label: "Update(5)".into(),
            },
            TraceEvent::Deliver {
                src: Pid(2),
                dst: Pid(0),
                label: "Ack".into(),
            },
            TraceEvent::ProgramRandom {
                pid: Pid(1),
                choices: 2,
                chosen: 1,
            },
            TraceEvent::Return {
                inv: InvId(1),
                pid: Pid(0),
                val: Val::Nil,
            },
            TraceEvent::Crash { pid: Pid(2) },
        ]);
        t
    }

    #[test]
    fn line_count_is_events_plus_header() {
        let t = sample_trace();
        let s = space_time(&t, 3, &DiagramOptions::default());
        assert_eq!(s.lines().count(), t.len() + 2);
        assert_eq!(
            space_time(&Trace::new(), 3, &DiagramOptions::default())
                .lines()
                .count(),
            2
        );
    }

    #[test]
    fn arrows_point_both_ways_and_carry_margin_labels() {
        let s = space_time(&sample_trace(), 3, &DiagramOptions::default());
        assert!(s.contains('▶'), "rightward delivery arrow:\n{s}");
        assert!(s.contains('◀'), "leftward delivery arrow:\n{s}");
        assert!(s.contains('●'), "send endpoint:\n{s}");
        assert!(s.contains("p0→p2: Update(5)"), "margin label:\n{s}");
        assert!(s.contains("p2→p0: Ack"), "margin label:\n{s}");
    }

    #[test]
    fn call_interval_opens_and_closes() {
        let s = space_time(&sample_trace(), 3, &DiagramOptions::default());
        assert!(s.contains('┌') && s.contains('└'), "interval markers:\n{s}");
        assert!(s.contains("call Write(5) @obj0"), "{s}");
        // While p0's Write is open, the random step row shows its spine.
        let random_row = s.lines().nth(5).unwrap();
        assert!(
            random_row.contains('│') && random_row.contains('◇'),
            "open interval spine on {random_row:?}"
        );
        assert!(s.contains('✗'), "crash marker:\n{s}");
    }

    #[test]
    fn long_labels_truncate_inside_the_lane() {
        let mut t = Trace::new();
        t.extend(vec![TraceEvent::Internal {
            pid: Pid(0),
            label: "x".repeat(100),
        }]);
        let s = space_time(&t, 2, &DiagramOptions::default());
        let row = s.lines().nth(2).unwrap();
        assert!(row.contains('…'), "truncated: {row:?}");
        assert!(row.chars().count() <= 5 + 2 * 24);
    }

    #[test]
    fn history_diagram_routes_returns_to_the_calling_lane() {
        use blunt_core::history::{Action, History};
        let h: History = vec![
            Action::Call {
                inv: InvId(0),
                pid: Pid(0),
                obj: ObjId(0),
                method: MethodId::WRITE,
                arg: Val::Int(7),
            },
            Action::Call {
                inv: InvId(1),
                pid: Pid(1),
                obj: ObjId(0),
                method: MethodId::READ,
                arg: Val::Nil,
            },
            Action::Return {
                inv: InvId(1),
                val: Val::Int(7),
            },
            Action::Return {
                inv: InvId(0),
                val: Val::Nil,
            },
            // Orphan return (call outside the window): silently dropped.
            Action::Return {
                inv: InvId(9),
                val: Val::Nil,
            },
        ]
        .into_iter()
        .collect();
        let s = history_space_time(&h, 2, &DiagramOptions::default());
        assert_eq!(s.lines().count(), 4 + 2, "orphan return dropped:\n{s}");
        assert!(s.contains("call Write(7) @obj0"), "{s}");
        assert!(s.contains("call Read(⊥) @obj0"), "{s}");
        // p1's read opens after p0's write and closes before it: both lanes
        // show an open spine on the read's call row.
        let read_call_row = s.lines().nth(3).unwrap();
        assert!(
            read_call_row.contains('│') && read_call_row.contains('┌'),
            "overlap visible on {read_call_row:?}"
        );
    }

    #[test]
    fn self_delivery_stays_in_lane() {
        let mut t = Trace::new();
        t.extend(vec![TraceEvent::Deliver {
            src: Pid(1),
            dst: Pid(1),
            label: "echo".into(),
        }]);
        let s = space_time(&t, 2, &DiagramOptions::default());
        assert!(s.contains("self-deliver echo"), "{s}");
        assert!(!s.contains('▶') && !s.contains('◀'));
    }
}
