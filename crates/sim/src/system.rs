//! The [`System`] trait — the contract between concurrent systems and the
//! adversary.
//!
//! A system is a *deterministic* state machine whose nondeterminism is fully
//! externalized into two channels:
//!
//! 1. **scheduling**: at every point the system exposes a finite set of
//!    enabled events; the adversary (scheduler or exhaustive explorer) picks
//!    which one happens next;
//! 2. **randomness**: applying an event may suspend the system at a
//!    `random(V)` instruction ([`Status::AwaitingRandom`]); the environment
//!    supplies a uniformly-distributed choice index to resume it.
//!
//! This split realizes the paper's strong-adversary model (Section 2.4): the
//! adversary observes the complete state — including all random values drawn
//! so far, since they are folded into the state — but cannot see the future:
//! the choice of the next event is made before the next random value exists.

use crate::trace::TraceEvent;
use blunt_core::ids::Pid;
use blunt_core::outcome::Outcome;
use std::fmt::Debug;
use std::hash::Hash;

/// Which kind of `random(V)` instruction suspended the system.
///
/// The distinction matters for the analysis of Theorem 4.2: *program* random
/// steps are the `r` steps of the original program `P(O)`; *object* random
/// steps are the iteration choices introduced by the preamble-iterating
/// transformation (Algorithm 2) and are not counted in `r`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RandomKind {
    /// A random step of the program text itself (e.g. the coin flip on
    /// Line 4 of Algorithm 1).
    Program,
    /// The `j := random([1..k])` step inside a transformed object `O^k`.
    Object,
}

/// The execution status of a system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Status {
    /// At least one event is (or may become) enabled.
    Running,
    /// The system is suspended at a `random(V)` instruction of process `pid`
    /// with `choices = |V|` equiprobable alternatives; call
    /// [`System::supply_random`] to resume. While suspended, no other event
    /// may be scheduled — sampling is a single atomic step.
    AwaitingRandom {
        /// The process executing the random instruction.
        pid: Pid,
        /// Number of equiprobable alternatives, `|V| ≥ 1`.
        choices: usize,
        /// Program or object randomness.
        kind: RandomKind,
    },
    /// The program has terminated (or reached a decided absorbing state such
    /// as the weakener's `loop forever`); the outcome is final.
    Done,
}

/// Side-effect collector passed to [`System::apply`] and
/// [`System::supply_random`].
///
/// Trace events are returned through this collector rather than stored in the
/// system state, so that states stay small and hashable for the exhaustive
/// explorer (which runs with tracing disabled).
#[derive(Debug, Default)]
pub struct Effects {
    tracing: bool,
    trace: Vec<TraceEvent>,
}

impl Effects {
    /// A collector that discards all events (used by the explorer).
    #[must_use]
    pub fn silent() -> Effects {
        Effects {
            tracing: false,
            trace: Vec::new(),
        }
    }

    /// A collector that records events (used by the kernel).
    #[must_use]
    pub fn recording() -> Effects {
        Effects {
            tracing: true,
            trace: Vec::new(),
        }
    }

    /// Records one trace event (no-op when tracing is disabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.tracing {
            self.trace.push(ev);
        }
    }

    /// Records a lazily-built trace event, avoiding construction cost when
    /// tracing is disabled.
    pub fn push_with<F: FnOnce() -> TraceEvent>(&mut self, f: F) {
        if self.tracing {
            self.trace.push(f());
        }
    }

    /// Returns `true` if events are being recorded.
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.tracing
    }

    /// Drains the recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }
}

/// A concurrent system driven by an external adversary.
///
/// # Contract
///
/// - `enabled` must be empty iff `status()` is `Done` **or**
///   `AwaitingRandom` (while suspended, the only legal move is
///   `supply_random`). For `Running` systems it must be non-empty: systems
///   model *complete* schedules (Section 2.4), so a running system that can
///   never progress is a bug in the system, not a reachable configuration.
/// - `apply` must only be called with an event from the current `enabled`
///   set and only while `Running`.
/// - `supply_random` must only be called while `AwaitingRandom { choices }`,
///   with `choice < choices`.
/// - Determinism: from equal states, equal event/choice sequences must
///   produce equal states. The explorer's memoization is sound only under
///   this condition; `Clone + Eq + Hash` on `Self` define state identity.
pub trait System: Clone + Eq + Hash {
    /// One schedulable atomic step (a process step or a message delivery).
    type Event: Clone + Debug;

    /// Number of processes in the system (`n` in Theorem 4.2).
    fn process_count(&self) -> usize;

    /// Collects the currently enabled events into `out` (cleared first).
    fn enabled(&self, out: &mut Vec<Self::Event>);

    /// Applies one enabled event.
    fn apply(&mut self, ev: &Self::Event, fx: &mut Effects);

    /// Resumes from an `AwaitingRandom` suspension with the given uniformly
    /// drawn choice index.
    fn supply_random(&mut self, choice: usize, fx: &mut Effects);

    /// The current status.
    fn status(&self) -> Status;

    /// The outcome of the execution so far (final once `Done`).
    fn outcome(&self) -> Outcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_silent_discards() {
        let mut fx = Effects::silent();
        fx.push(TraceEvent::Crash { pid: Pid(0) });
        fx.push_with(|| TraceEvent::Crash { pid: Pid(1) });
        assert!(fx.take().is_empty());
        assert!(!fx.is_tracing());
    }

    #[test]
    fn effects_recording_collects_in_order() {
        let mut fx = Effects::recording();
        fx.push(TraceEvent::Crash { pid: Pid(0) });
        fx.push_with(|| TraceEvent::Crash { pid: Pid(1) });
        let evs = fx.take();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], TraceEvent::Crash { pid: Pid(0) }));
        assert!(matches!(evs[1], TraceEvent::Crash { pid: Pid(1) }));
        // take() drains.
        assert!(fx.take().is_empty());
    }

    #[test]
    fn status_is_hashable_and_comparable() {
        let a = Status::AwaitingRandom {
            pid: Pid(1),
            choices: 2,
            kind: RandomKind::Program,
        };
        let b = Status::AwaitingRandom {
            pid: Pid(1),
            choices: 2,
            kind: RandomKind::Object,
        };
        assert_ne!(a, b);
        assert_eq!(Status::Done, Status::Done);
    }
}
