//! Exact worst-case adversary probabilities by memoized expectimax.
//!
//! The paper defines `Prob[P(O) → B]` as the supremum of
//! `Prob[P(O)‖A → B]` over all strong adversaries `A` (Section 2.4). For the
//! finite systems in this workspace that supremum is the value of a finite
//! **expectimax game**:
//!
//! - at a `Running` state, the adversary picks the enabled event that
//!   *maximizes* the probability of reaching `B` — adversary scheduling
//!   decisions may depend on the entire state, including all random values
//!   drawn so far, which is exactly the strong-adversary information model;
//! - at an `AwaitingRandom` state, the value is the *uniform average* over
//!   the `|V|` branches — the adversary cannot see the future coin;
//! - at a `Done` state, the value is 1 if the outcome is in `B`, else 0.
//!
//! Values are exact [`Ratio`]s. States are memoized (the same global state
//! reached along different interleavings has the same game value), which is
//! what makes exhaustive exploration of protocol-level interleavings
//! feasible.

use crate::system::{Effects, Status, System};
use blunt_core::outcome::Outcome;
use blunt_core::ratio::Ratio;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Resource limits for an exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreBudget {
    /// Maximum number of distinct states to evaluate.
    pub max_states: usize,
    /// Memoize on 128-bit state fingerprints instead of full states.
    ///
    /// Cuts memo memory by roughly an order of magnitude, at the cost of a
    /// (cryptographically negligible for these state counts, but nonzero)
    /// hash-collision probability: with `N` distinct states the expected
    /// number of colliding pairs is about `N²/2¹²⁹`. Use for large sweeps;
    /// keep the exact memo for headline numbers.
    pub fingerprint: bool,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget {
            max_states: 5_000_000,
            fingerprint: false,
        }
    }
}

impl ExploreBudget {
    /// A budget of `max_states` distinct states.
    #[must_use]
    pub fn with_max_states(max_states: usize) -> ExploreBudget {
        ExploreBudget {
            max_states,
            fingerprint: false,
        }
    }

    /// Switches to fingerprint memoization (see [`ExploreBudget::fingerprint`]).
    #[must_use]
    pub fn fingerprinted(mut self) -> ExploreBudget {
        self.fingerprint = true;
        self
    }
}

/// A 128-bit state fingerprint from two independently-salted hashes.
fn fingerprint_of<S: std::hash::Hash>(s: &S) -> u128 {
    use std::hash::Hasher;
    let mut h1 = std::collections::hash_map::DefaultHasher::new();
    h1.write_u8(0x5a);
    s.hash(&mut h1);
    let mut h2 = std::collections::hash_map::DefaultHasher::new();
    h2.write_u64(0x1234_5678_9abc_def0);
    s.hash(&mut h2);
    (u128::from(h1.finish()) << 64) | u128::from(h2.finish())
}

/// A memo table keyed either by full states or by fingerprints.
enum Memo<S, V> {
    Exact(HashMap<S, V>),
    Finger(HashMap<u128, V>),
}

impl<S: System, V: Copy> Memo<S, V> {
    fn new(fingerprint: bool) -> Memo<S, V> {
        if fingerprint {
            Memo::Finger(HashMap::new())
        } else {
            Memo::Exact(HashMap::new())
        }
    }

    fn get(&self, s: &S) -> Option<V> {
        match self {
            Memo::Exact(m) => m.get(s).copied(),
            Memo::Finger(m) => m.get(&fingerprint_of(s)).copied(),
        }
    }

    fn insert(&mut self, s: &S, v: V) {
        match self {
            Memo::Exact(m) => {
                m.insert(s.clone(), v);
            }
            Memo::Finger(m) => {
                m.insert(fingerprint_of(s), v);
            }
        }
    }
}

/// Exploration failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExploreError {
    /// The state budget was exhausted before the value was determined.
    BudgetExceeded {
        /// States evaluated before giving up.
        explored: usize,
    },
    /// A principal-variation walk exceeded its step bound — the game graph
    /// has a longer optimal line than the caller allowed for.
    StepLimit {
        /// The bound that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::BudgetExceeded { explored } => {
                write!(f, "exploration budget exceeded after {explored} states")
            }
            ExploreError::StepLimit { limit } => {
                write!(f, "principal variation longer than the step bound {limit}")
            }
        }
    }
}

impl Error for ExploreError {}

/// Statistics from an exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Distinct states evaluated.
    pub states: usize,
    /// Memoization hits (re-converging interleavings).
    pub memo_hits: usize,
    /// Maximum recursion depth reached (longest execution prefix).
    pub max_depth: usize,
    /// Outgoing edges generated across all evaluated states (scheduler
    /// choices plus random branches) — `transitions / states` is the mean
    /// branching factor of the game.
    pub transitions: usize,
}

impl ExploreStats {
    /// Mean branching factor of the explored game (0.0 when empty).
    #[must_use]
    pub fn branching_factor(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            self.transitions as f64 / self.states as f64
        }
    }

    /// Adds these statistics to the global metrics under `prefix`:
    /// `<prefix>.solves`, `.states`, `.memo_hits`, `.transitions` (counters)
    /// and `<prefix>.max_depth_hwm` (high-water gauge).
    ///
    /// The explorer accumulates locally and flushes once per solve so the
    /// recursion itself carries no metric overhead.
    pub fn publish(&self, prefix: &str) {
        let g = blunt_obs::global();
        g.counter(&format!("{prefix}.solves")).inc();
        g.counter(&format!("{prefix}.states"))
            .add(self.states as u64);
        g.counter(&format!("{prefix}.memo_hits"))
            .add(self.memo_hits as u64);
        g.counter(&format!("{prefix}.transitions"))
            .add(self.transitions as u64);
        g.gauge(&format!("{prefix}.max_depth_hwm"))
            .record_max(self.max_depth as i64);
    }
}

/// Whether the scheduler is adversarial or benevolent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Objective {
    Maximize,
    Minimize,
}

/// Which player owns a recorded game-tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchNodeKind {
    /// A `Running` state: the adversary picks among enabled events.
    Adversary,
    /// An `AwaitingRandom` state: the value averages over the coin.
    Random,
    /// A `Done` state: the value is 0 or 1.
    Terminal,
}

impl SearchNodeKind {
    /// The lowercase tag used in JSONL export and renderers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SearchNodeKind::Adversary => "adversary",
            SearchNodeKind::Random => "random",
            SearchNodeKind::Terminal => "terminal",
        }
    }
}

/// One outgoing edge of a recorded game-tree node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchEdge {
    /// Human-readable label of the step (event label or `random -> c`).
    pub label: String,
    /// Exact value of the sub-tree behind this edge.
    pub value: Ratio,
    /// Id of the recorded child node; `None` if the child was a memo hit or
    /// fell outside the node cap.
    pub child: Option<usize>,
    /// `true` on the edge the maximizing (or minimizing) player selects —
    /// the first edge attaining the node value. Always `false` at random
    /// nodes, where no player chooses.
    pub chosen: bool,
}

/// One recorded node of the (pruned) expectimax game tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchNode {
    /// Node id — the index into [`SearchTrace::nodes`], assigned in DFS
    /// preorder, so id 0 is the root.
    pub id: usize,
    /// Distance from the root in game steps.
    pub depth: usize,
    /// Who moves at this node.
    pub kind: SearchNodeKind,
    /// 128-bit fingerprint of the scheduler state (see `ExploreBudget`).
    pub digest: u128,
    /// Exact game value of this node.
    pub value: Ratio,
    /// Explored outgoing edges. Early-exit pruning (stop at value 1 when
    /// maximizing) means trailing siblings may be absent.
    pub edges: Vec<SearchEdge>,
}

/// A recorder for the expectimax game tree explored by a [`Solver`].
///
/// Recording is capped at a node budget; because nodes are allocated in DFS
/// preorder, the recorded set is always a prefix-closed subtree containing
/// the root, and [`SearchTrace::truncated`] counts the states that fell
/// outside the cap. The recorded tree is *pruned* exactly like the search
/// itself: memo hits become edges without a child node, and early-exit
/// pruning omits unexplored siblings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchTrace {
    max_nodes: usize,
    nodes: Vec<SearchNode>,
    /// Number of evaluated states that were not recorded (node cap).
    pub truncated: usize,
}

impl SearchTrace {
    /// A recorder holding at most `max_nodes` nodes.
    #[must_use]
    pub fn with_max_nodes(max_nodes: usize) -> SearchTrace {
        SearchTrace {
            max_nodes,
            nodes: Vec::new(),
            truncated: 0,
        }
    }

    /// All recorded nodes, id-ordered (DFS preorder).
    #[must_use]
    pub fn nodes(&self) -> &[SearchNode] {
        &self.nodes
    }

    /// The root node, if anything was recorded.
    #[must_use]
    pub fn root(&self) -> Option<&SearchNode> {
        self.nodes.first()
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serializes the tree as JSONL records: one `search_tree` header
    /// followed by one `search_node` record per node (schema:
    /// `docs/OBS_SCHEMA.md`).
    #[must_use]
    pub fn to_jsonl_records(&self) -> Vec<blunt_obs::Json> {
        use blunt_obs::Json;
        let ratio = |v: Ratio| Json::Str(v.to_string());
        let mut out = Vec::with_capacity(self.nodes.len() + 1);
        out.push(Json::Obj(vec![
            ("type".into(), Json::Str("search_tree".into())),
            ("nodes".into(), Json::UInt(self.nodes.len() as u64)),
            ("truncated".into(), Json::UInt(self.truncated as u64)),
            (
                "root_value".into(),
                self.root().map_or(Json::Null, |r| ratio(r.value)),
            ),
        ]));
        for n in &self.nodes {
            out.push(Json::Obj(vec![
                ("type".into(), Json::Str("search_node".into())),
                ("id".into(), Json::UInt(n.id as u64)),
                ("depth".into(), Json::UInt(n.depth as u64)),
                ("kind".into(), Json::Str(n.kind.as_str().into())),
                ("digest".into(), Json::Str(format!("{:032x}", n.digest))),
                ("value".into(), ratio(n.value)),
                ("value_f".into(), Json::Float(n.value.to_f64())),
                (
                    "edges".into(),
                    Json::Arr(
                        n.edges
                            .iter()
                            .map(|e| {
                                Json::Obj(vec![
                                    ("label".into(), Json::Str(e.label.clone())),
                                    ("value".into(), ratio(e.value)),
                                    ("value_f".into(), Json::Float(e.value.to_f64())),
                                    (
                                        "child".into(),
                                        e.child.map_or(Json::Null, |c| Json::UInt(c as u64)),
                                    ),
                                    ("chosen".into(), Json::Bool(e.chosen)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
        out
    }
}

/// What kind of step a principal-variation entry is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PvStepKind {
    /// A scheduling decision: the optimizing player picked one of
    /// `alternatives` enabled events.
    Adversary {
        /// Number of enabled events at the decision point.
        alternatives: usize,
    },
    /// A `random(V)` step resolved by the supplied random source.
    Random {
        /// `|V|`.
        choices: usize,
        /// The drawn index.
        chosen: usize,
    },
}

/// One step of a principal variation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PvStep {
    /// Human-readable label of the step taken.
    pub label: String,
    /// Decision or coin.
    pub kind: PvStepKind,
    /// Exact game value of the position *after* this step.
    pub value: Ratio,
}

/// A principal variation: one optimal line of play through the game,
/// extracted by [`Solver::principal_variation`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pv {
    /// The game value at the root (before any step).
    pub value: Ratio,
    /// The steps of the line, in schedule order.
    pub steps: Vec<PvStep>,
    /// The outcome of the terminal state the line reaches.
    pub outcome: Outcome,
}

impl Pv {
    /// Labels of the scheduling decisions only (coin steps skipped) — the
    /// adversary's schedule, directly comparable to a scripted adversary.
    #[must_use]
    pub fn schedule(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, PvStepKind::Adversary { .. }))
            .map(|s| s.label.as_str())
            .collect()
    }
}

/// A reusable expectimax solver over one [`System`] type.
///
/// Wraps the memoized recursion of [`worst_case_prob`] / [`best_case_prob`]
/// and adds two explainability features on top of the identical search:
///
/// - [`Solver::record_tree`] captures the (pruned) game tree as a
///   [`SearchTrace`];
/// - [`Solver::principal_variation`] re-walks the solved game greedily,
///   resolving coins with a caller-supplied [`crate::rng::RandomSource`],
///   and returns
///   the optimal schedule with exact sub-tree values at every step.
///
/// The memo table persists across calls, so extracting several principal
/// variations (one per coin tape) after one [`Solver::solve`] is cheap.
pub struct Solver<'a, S: System, F: ?Sized> {
    bad: &'a F,
    budget: ExploreBudget,
    objective: Objective,
    memo: Memo<S, Ratio>,
    stats: ExploreStats,
    #[allow(clippy::type_complexity)]
    labeler: Box<dyn Fn(&S, &S::Event) -> String + 'a>,
    tree: Option<SearchTrace>,
    /// Node id recorded for the state most recently evaluated by `value`
    /// (None for memo hits and uncapped states) — lets the parent link its
    /// edge to the child node without changing the recursion signature.
    last_node: Option<usize>,
}

impl<'a, S, F> Solver<'a, S, F>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    /// A maximizing (adversarial) solver for the outcome predicate `bad`.
    pub fn new(bad: &'a F, budget: ExploreBudget) -> Solver<'a, S, F> {
        Solver {
            bad,
            budget,
            objective: Objective::Maximize,
            memo: Memo::new(budget.fingerprint),
            stats: ExploreStats::default(),
            labeler: Box::new(|_, ev| format!("{ev:?}")),
            tree: None,
            last_node: None,
        }
    }

    /// Switches to the benevolent (minimizing) scheduler.
    #[must_use]
    pub fn minimizing(mut self) -> Self {
        self.objective = Objective::Minimize;
        self
    }

    /// Installs a custom event labeler used for [`SearchTrace`] edges and
    /// principal-variation steps (default: the event's `Debug` form). The
    /// labeler receives the state *before* the event, so it can resolve
    /// opaque event indices (e.g. a network slot) against it.
    #[must_use]
    pub fn with_labeler(mut self, f: impl Fn(&S, &S::Event) -> String + 'a) -> Self {
        self.labeler = Box::new(f);
        self
    }

    /// Enables game-tree recording, keeping at most `max_nodes` nodes.
    #[must_use]
    pub fn record_tree(mut self, max_nodes: usize) -> Self {
        self.tree = Some(SearchTrace::with_max_nodes(max_nodes));
        self
    }

    /// Statistics accumulated so far (solve + any PV walks).
    #[must_use]
    pub fn stats(&self) -> ExploreStats {
        self.stats
    }

    /// The recorded game tree, if [`Solver::record_tree`] was enabled.
    #[must_use]
    pub fn tree(&self) -> Option<&SearchTrace> {
        self.tree.as_ref()
    }

    /// Takes ownership of the recorded game tree (recording stops).
    pub fn take_tree(&mut self) -> Option<SearchTrace> {
        self.tree.take()
    }

    /// Computes the exact game value from `sys` and publishes the
    /// exploration statistics under `sim.explore`.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] if the state budget runs
    /// out.
    ///
    /// # Panics
    ///
    /// Panics if the system violates the progress contract (`Running` with
    /// no enabled events).
    pub fn solve(&mut self, sys: &S) -> Result<Ratio, ExploreError> {
        let v = self.value(sys, 0)?;
        self.stats.publish("sim.explore");
        Ok(v)
    }

    /// Extracts a principal variation: starting from `sys`, repeatedly takes
    /// the first enabled event attaining the optimal value (the same
    /// tie-break as the solver) and resolves every `random(V)` step with
    /// `rng`. Different tapes yield the optimal line for each coin
    /// sequence — together they spell out the adversary's full strategy.
    ///
    /// Unexplored positions encountered on the walk (early-exit pruning
    /// skips siblings during [`Solver::solve`]) are evaluated on demand
    /// against the shared memo, so the reported values stay exact.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BudgetExceeded`] if on-demand evaluation
    /// exhausts the state budget, and [`ExploreError::StepLimit`] if the
    /// line exceeds `max_steps`.
    ///
    /// # Panics
    ///
    /// Panics if the system violates the progress contract, or if `rng`
    /// does (e.g. an exhausted [`crate::rng::Tape`]).
    pub fn principal_variation<R: crate::rng::RandomSource>(
        &mut self,
        sys: &S,
        rng: &mut R,
        max_steps: usize,
    ) -> Result<Pv, ExploreError> {
        let value = self.value(sys, 0)?;
        let mut cur = sys.clone();
        let mut steps: Vec<PvStep> = Vec::new();
        let mut enabled = Vec::new();
        let mut fx = Effects::silent();
        loop {
            match cur.status() {
                Status::Done => break,
                Status::AwaitingRandom { choices, .. } => {
                    if steps.len() >= max_steps {
                        return Err(ExploreError::StepLimit { limit: max_steps });
                    }
                    let chosen = rng.draw(choices);
                    debug_assert!(chosen < choices);
                    let mut next = cur.clone();
                    next.supply_random(chosen, &mut fx);
                    let v = self.value(&next, steps.len() + 1)?;
                    steps.push(PvStep {
                        label: format!("random({choices}) -> {chosen}"),
                        kind: PvStepKind::Random { choices, chosen },
                        value: v,
                    });
                    cur = next;
                }
                Status::Running => {
                    if steps.len() >= max_steps {
                        return Err(ExploreError::StepLimit { limit: max_steps });
                    }
                    cur.enabled(&mut enabled);
                    assert!(!enabled.is_empty(), "Running with no enabled events");
                    let mut best: Option<(Ratio, usize, S)> = None;
                    for (i, ev) in enabled.iter().enumerate() {
                        let mut next = cur.clone();
                        next.apply(ev, &mut fx);
                        let v = self.value(&next, steps.len() + 1)?;
                        let better = match (self.objective, &best) {
                            (_, None) => true,
                            (Objective::Maximize, Some((b, _, _))) => v > *b,
                            (Objective::Minimize, Some((b, _, _))) => v < *b,
                        };
                        if better {
                            best = Some((v, i, next));
                        }
                    }
                    let (v, i, next) = best.expect("non-empty enabled set");
                    steps.push(PvStep {
                        label: (self.labeler)(&cur, &enabled[i]),
                        kind: PvStepKind::Adversary {
                            alternatives: enabled.len(),
                        },
                        value: v,
                    });
                    cur = next;
                }
            }
        }
        Ok(Pv {
            value,
            steps,
            outcome: cur.outcome(),
        })
    }

    /// Allocates a tree node for the state being expanded, if recording is
    /// on and the cap allows.
    fn open_node(&mut self, sys: &S, depth: usize, kind: SearchNodeKind) -> Option<usize> {
        let tree = self.tree.as_mut()?;
        if tree.nodes.len() >= tree.max_nodes {
            tree.truncated += 1;
            return None;
        }
        let id = tree.nodes.len();
        tree.nodes.push(SearchNode {
            id,
            depth,
            kind,
            digest: fingerprint_of(sys),
            value: Ratio::ZERO,
            edges: Vec::new(),
        });
        Some(id)
    }

    fn value(&mut self, sys: &S, depth: usize) -> Result<Ratio, ExploreError> {
        if let Some(v) = self.memo.get(sys) {
            self.stats.memo_hits += 1;
            self.last_node = None;
            return Ok(v);
        }
        if self.stats.states >= self.budget.max_states {
            return Err(ExploreError::BudgetExceeded {
                explored: self.stats.states,
            });
        }
        self.stats.states += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        let mut fx = Effects::silent();
        let mut edges: Vec<SearchEdge> = Vec::new();
        let mut chosen_edge: Option<usize> = None;
        let (node, v) = match sys.status() {
            Status::Done => {
                let node = self.open_node(sys, depth, SearchNodeKind::Terminal);
                let v = if (self.bad)(&sys.outcome()) {
                    Ratio::ONE
                } else {
                    Ratio::ZERO
                };
                (node, v)
            }
            Status::AwaitingRandom { choices, .. } => {
                debug_assert!(choices >= 1);
                let node = self.open_node(sys, depth, SearchNodeKind::Random);
                self.stats.transitions += choices;
                let mut total = Ratio::ZERO;
                for c in 0..choices {
                    let mut next = sys.clone();
                    next.supply_random(c, &mut fx);
                    let cv = self.value(&next, depth + 1)?;
                    if node.is_some() {
                        edges.push(SearchEdge {
                            label: format!("random -> {c}"),
                            value: cv,
                            child: self.last_node,
                            chosen: false,
                        });
                    }
                    total += cv;
                }
                (node, total / Ratio::from_int(choices as i128))
            }
            Status::Running => {
                let node = self.open_node(sys, depth, SearchNodeKind::Adversary);
                let mut enabled = Vec::new();
                sys.enabled(&mut enabled);
                assert!(
                    !enabled.is_empty(),
                    "System contract violation: Running with no enabled events"
                );
                self.stats.transitions += enabled.len();
                let mut best: Option<Ratio> = None;
                for ev in &enabled {
                    let mut next = sys.clone();
                    next.apply(ev, &mut fx);
                    let cv = self.value(&next, depth + 1)?;
                    if node.is_some() {
                        edges.push(SearchEdge {
                            label: (self.labeler)(sys, ev),
                            value: cv,
                            child: self.last_node,
                            chosen: false,
                        });
                    }
                    let better = match (self.objective, best) {
                        (_, None) => true,
                        (Objective::Maximize, Some(b)) => cv > b,
                        (Objective::Minimize, Some(b)) => cv < b,
                    };
                    if better {
                        best = Some(cv);
                        chosen_edge = Some(edges.len().saturating_sub(1));
                    }
                    // The value of any strategy is in [0, 1]; stop early at
                    // the extremum.
                    match (self.objective, best) {
                        (Objective::Maximize, Some(b)) if b == Ratio::ONE => break,
                        (Objective::Minimize, Some(b)) if b == Ratio::ZERO => break,
                        _ => {}
                    }
                }
                (node, best.expect("non-empty enabled set"))
            }
        };
        if let (Some(id), Some(tree)) = (node, self.tree.as_mut()) {
            if matches!(sys.status(), Status::Running) {
                if let Some(e) = chosen_edge {
                    if e < edges.len() {
                        edges[e].chosen = true;
                    }
                }
            }
            tree.nodes[id].value = v;
            tree.nodes[id].edges = edges;
        }
        self.memo.insert(sys, v);
        self.last_node = node;
        Ok(v)
    }
}

fn explore<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
    objective: Objective,
) -> Result<(Ratio, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    let mut solver = Solver::new(bad, *budget);
    solver.objective = objective;
    let v = solver.solve(sys)?;
    Ok((v, solver.stats))
}

/// Computes `Prob[P(O) → B]` — the **exact worst-case** probability of the
/// outcome set `B` (defined by the predicate `bad`) over all strong
/// adversaries.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
///
/// # Panics
///
/// Panics if the system violates the progress contract (`Running` with no
/// enabled events).
///
/// ```
/// use blunt_sim::{worst_case_prob, ExploreBudget};
/// use blunt_sim::toy::TwoCoinGame;
/// use blunt_core::ratio::Ratio;
///
/// // Two independent fair coins match with probability 1/2 — and no
/// // adversary can change that.
/// let (p, stats) = worst_case_prob(
///     &TwoCoinGame::new(),
///     &TwoCoinGame::is_bad,
///     &ExploreBudget::default(),
/// ).unwrap();
/// assert_eq!(p, Ratio::new(1, 2));
/// assert!(stats.states > 0);
/// ```
pub fn worst_case_prob<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
) -> Result<(Ratio, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    explore(sys, bad, budget, Objective::Maximize)
}

/// Computes the **best-case** probability of `B` — the value under the most
/// *benevolent* scheduler. The spread between [`worst_case_prob`] and this
/// value quantifies how much of the bad-outcome probability is adversarial.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
pub fn best_case_prob<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
) -> Result<(Ratio, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    explore(sys, bad, budget, Objective::Minimize)
}

/// Decides whether the adversary can force the bad outcome **with
/// probability one** — i.e. whether `Prob[P(O) → B] = 1`.
///
/// This is a Boolean AND–OR reachability question, much cheaper than the
/// exact expectimax: an adversary node is a *sure win* iff **some** child is
/// (OR), a random node iff **all** children are (AND: the adversary must win
/// for every coin outcome), a terminal node iff its outcome is bad. Used to
/// certify the paper's Appendix A.2 claim (plain ABD: nontermination forced
/// surely) on the full game rather than a single witness schedule.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
///
/// # Panics
///
/// Panics if the system violates the progress contract.
pub fn sure_win<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
) -> Result<(bool, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    struct BoolExplorer<'a, S: System, F: ?Sized> {
        bad: &'a F,
        budget: ExploreBudget,
        memo: Memo<S, bool>,
        stats: ExploreStats,
    }
    impl<'a, S, F> BoolExplorer<'a, S, F>
    where
        S: System,
        F: Fn(&Outcome) -> bool + ?Sized,
    {
        fn wins(&mut self, sys: &S, depth: usize) -> Result<bool, ExploreError> {
            if let Some(v) = self.memo.get(sys) {
                self.stats.memo_hits += 1;
                return Ok(v);
            }
            if self.stats.states >= self.budget.max_states {
                return Err(ExploreError::BudgetExceeded {
                    explored: self.stats.states,
                });
            }
            self.stats.states += 1;
            self.stats.max_depth = self.stats.max_depth.max(depth);
            let mut fx = Effects::silent();
            let v = match sys.status() {
                Status::Done => (self.bad)(&sys.outcome()),
                Status::AwaitingRandom { choices, .. } => {
                    self.stats.transitions += choices;
                    let mut all = true;
                    for c in 0..choices {
                        let mut next = sys.clone();
                        next.supply_random(c, &mut fx);
                        if !self.wins(&next, depth + 1)? {
                            all = false;
                            break;
                        }
                    }
                    all
                }
                Status::Running => {
                    let mut enabled = Vec::new();
                    sys.enabled(&mut enabled);
                    assert!(!enabled.is_empty(), "Running with no enabled events");
                    self.stats.transitions += enabled.len();
                    let mut any = false;
                    for ev in &enabled {
                        let mut next = sys.clone();
                        next.apply(ev, &mut fx);
                        if self.wins(&next, depth + 1)? {
                            any = true;
                            break;
                        }
                    }
                    any
                }
            };
            self.memo.insert(sys, v);
            Ok(v)
        }
    }
    let mut ex = BoolExplorer {
        bad,
        budget: *budget,
        memo: Memo::new(budget.fingerprint),
        stats: ExploreStats::default(),
    };
    let v = ex.wins(sys, 0)?;
    ex.stats.publish("sim.explore");
    Ok((v, ex.stats))
}

/// Enumerates the set of outcomes reachable under *any* adversary and *any*
/// random values — the program's outcome set of Proposition 2.1.
///
/// Theorem 4.1 (`O^k ≡ O`) and Proposition 2.1 together predict that a
/// program has the **same outcome set** over equivalent objects; comparing
/// the sets returned here for `P(O_a)`, `P(O)` and `P(O^k)` tests that
/// prediction directly.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
///
/// # Panics
///
/// Panics if the system violates the progress contract.
pub fn reachable_outcomes<S: System>(
    sys: &S,
    budget: &ExploreBudget,
) -> Result<(std::collections::BTreeSet<Outcome>, ExploreStats), ExploreError> {
    let mut seen: Memo<S, ()> = Memo::new(budget.fingerprint);
    let mut outcomes = std::collections::BTreeSet::new();
    let mut stats = ExploreStats::default();
    let mut stack = vec![(sys.clone(), 0usize)];
    let mut fx = Effects::silent();
    while let Some((cur, depth)) = stack.pop() {
        if seen.get(&cur).is_some() {
            stats.memo_hits += 1;
            continue;
        }
        if stats.states >= budget.max_states {
            return Err(ExploreError::BudgetExceeded {
                explored: stats.states,
            });
        }
        stats.states += 1;
        stats.max_depth = stats.max_depth.max(depth);
        seen.insert(&cur, ());
        match cur.status() {
            Status::Done => {
                outcomes.insert(cur.outcome());
            }
            Status::AwaitingRandom { choices, .. } => {
                stats.transitions += choices;
                for c in 0..choices {
                    let mut next = cur.clone();
                    next.supply_random(c, &mut fx);
                    stack.push((next, depth + 1));
                }
            }
            Status::Running => {
                let mut enabled = Vec::new();
                cur.enabled(&mut enabled);
                assert!(!enabled.is_empty(), "Running with no enabled events");
                stats.transitions += enabled.len();
                for ev in &enabled {
                    let mut next = cur.clone();
                    next.apply(ev, &mut fx);
                    stack.push((next, depth + 1));
                }
            }
        }
    }
    stats.publish("sim.explore");
    Ok((outcomes, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Tape;
    use crate::toy::{BranchGame, GambleGame, TwoCoinGame};

    #[test]
    fn branch_game_worst_is_half_best_is_zero() {
        let budget = ExploreBudget::default();
        let (worst, _) = worst_case_prob(&BranchGame::new(), &BranchGame::is_bad, &budget).unwrap();
        let (best, _) = best_case_prob(&BranchGame::new(), &BranchGame::is_bad, &budget).unwrap();
        assert_eq!(worst, Ratio::new(1, 2));
        assert_eq!(best, Ratio::ZERO);
    }

    #[test]
    fn two_coin_game_has_no_adversarial_spread() {
        let budget = ExploreBudget::default();
        let (worst, _) =
            worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        let (best, _) = best_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        assert_eq!(worst, Ratio::new(1, 2));
        assert_eq!(best, Ratio::new(1, 2));
    }

    #[test]
    fn sure_win_matches_exact_values() {
        let budget = ExploreBudget::default();
        // BranchGame: worst case 1/2 < 1, so no sure win.
        let (w, _) = sure_win(&BranchGame::new(), &BranchGame::is_bad, &budget).unwrap();
        assert!(!w);
        // But the *good* outcome can be forced surely (take Safe).
        let good = |o: &Outcome| !BranchGame::is_bad(o);
        let (w, _) = sure_win(&BranchGame::new(), &good, &budget).unwrap();
        assert!(w);
        // TwoCoinGame: nothing is sure.
        let (w, _) = sure_win(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        assert!(!w);
    }

    #[test]
    fn reachable_outcomes_enumerates_all_leaves() {
        let (outs, stats) =
            reachable_outcomes(&TwoCoinGame::new(), &ExploreBudget::default()).unwrap();
        // Four coin combinations → four distinct outcomes.
        assert_eq!(outs.len(), 4);
        assert!(stats.states > 4);
        let bad: usize = outs.iter().filter(|o| TwoCoinGame::is_bad(o)).count();
        assert_eq!(bad, 2);

        let (outs, _) = reachable_outcomes(&BranchGame::new(), &ExploreBudget::default()).unwrap();
        // Safe (good), risky-good, risky-bad — but safe and risky-good
        // record different values? Safe records Int(0) (bad=false), risky
        // with coin 0 also records Int(0): they collapse. So 2 outcomes.
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn fingerprint_memo_reproduces_exact_values() {
        let exact = ExploreBudget::default();
        let finger = ExploreBudget::default().fingerprinted();
        let (a, _) = worst_case_prob(&BranchGame::new(), &BranchGame::is_bad, &exact).unwrap();
        let (b, _) = worst_case_prob(&BranchGame::new(), &BranchGame::is_bad, &finger).unwrap();
        assert_eq!(a, b);
        let (a, _) = worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &exact).unwrap();
        let (b, _) = worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &finger).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let budget = ExploreBudget::with_max_states(1);
        let err = worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap_err();
        assert!(matches!(err, ExploreError::BudgetExceeded { .. }));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn stats_track_depth_and_states() {
        let (_, stats) = worst_case_prob(
            &TwoCoinGame::new(),
            &TwoCoinGame::is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
        // Path: step, coin, step, coin, done = depth ≥ 4.
        assert!(stats.max_depth >= 4);
        assert!(stats.states >= 5);
    }

    #[test]
    fn solver_matches_free_function_and_records_tree() {
        let budget = ExploreBudget::default();
        let (free_v, free_stats) =
            worst_case_prob(&GambleGame::new(), &GambleGame::is_bad, &budget).unwrap();
        let mut solver = Solver::new(&GambleGame::is_bad, budget).record_tree(10_000);
        let v = solver.solve(&GambleGame::new()).unwrap();
        assert_eq!(v, free_v);
        assert_eq!(v, Ratio::new(5, 8));
        // Recording must not change the search itself.
        assert_eq!(solver.stats().states, free_stats.states);

        let tree = solver.take_tree().unwrap();
        assert!(!tree.is_empty());
        assert_eq!(tree.truncated, 0);
        let root = tree.root().unwrap();
        assert_eq!(root.id, 0);
        assert_eq!(root.depth, 0);
        assert_eq!(root.kind, SearchNodeKind::Adversary);
        assert_eq!(root.value, Ratio::new(5, 8));
        // Root has the single Flip edge, chosen, leading to the coin node.
        assert_eq!(root.edges.len(), 1);
        assert!(root.edges[0].chosen);
        assert_eq!(root.edges[0].value, Ratio::new(5, 8));
        let coin = &tree.nodes()[root.edges[0].child.unwrap()];
        assert_eq!(coin.kind, SearchNodeKind::Random);
        assert_eq!(coin.edges.len(), 2);
        assert_eq!(coin.edges[0].value, Ratio::ONE);
        assert_eq!(coin.edges[1].value, Ratio::new(1, 4));
        assert!(coin.edges.iter().all(|e| !e.chosen));
        // Every child id points inside the recorded tree, every recorded
        // node is deeper than its parent.
        for n in tree.nodes() {
            for e in &n.edges {
                if let Some(c) = e.child {
                    assert!(c < tree.len());
                    assert_eq!(tree.nodes()[c].depth, n.depth + 1);
                }
            }
        }
    }

    #[test]
    fn search_trace_node_cap_keeps_prefix_and_counts_truncated() {
        let mut solver = Solver::new(&GambleGame::is_bad, ExploreBudget::default()).record_tree(3);
        solver.solve(&GambleGame::new()).unwrap();
        let tree = solver.take_tree().unwrap();
        assert_eq!(tree.len(), 3);
        assert!(tree.truncated > 0);
        // DFS preorder: every recorded non-root node's parent is recorded.
        assert_eq!(tree.root().unwrap().id, 0);
    }

    #[test]
    fn search_trace_exports_jsonl() {
        let mut solver =
            Solver::new(&GambleGame::is_bad, ExploreBudget::default()).record_tree(10_000);
        solver.solve(&GambleGame::new()).unwrap();
        let tree = solver.take_tree().unwrap();
        let records = tree.to_jsonl_records();
        assert_eq!(records.len(), tree.len() + 1);
        let header = &records[0];
        assert_eq!(
            header.get("type").and_then(blunt_obs::Json::as_str),
            Some("search_tree")
        );
        assert_eq!(
            header.get("root_value").and_then(blunt_obs::Json::as_str),
            Some("5/8")
        );
        // Every line re-parses.
        for r in &records {
            let text = r.to_string();
            assert!(blunt_obs::Json::parse(&text).is_ok(), "unparsable {text}");
        }
    }

    #[test]
    fn principal_variation_follows_the_coin() {
        let mut solver = Solver::new(&GambleGame::is_bad, ExploreBudget::default());
        solver.solve(&GambleGame::new()).unwrap();

        // Coin 0: the adversary takes the sure win.
        let pv = solver
            .principal_variation(&GambleGame::new(), &mut Tape::new(vec![0]), 100)
            .unwrap();
        assert_eq!(pv.value, Ratio::new(5, 8));
        assert!(GambleGame::is_bad(&pv.outcome));
        assert_eq!(pv.schedule(), vec!["Flip", "TakeWin"]);
        assert_eq!(pv.steps.last().unwrap().value, Ratio::ONE);

        // Coin 1: the sure loss is refused — the gamble is the optimal
        // line; with gamble coins [1, 1] the adversary still wins.
        let pv = solver
            .principal_variation(&GambleGame::new(), &mut Tape::new(vec![1, 1, 1]), 100)
            .unwrap();
        assert_eq!(pv.schedule(), vec!["Flip", "Gamble"]);
        assert!(GambleGame::is_bad(&pv.outcome));
        // Value after entering the gamble is exactly 1/4.
        let gamble_step = pv.steps.iter().find(|s| s.label == "Gamble").unwrap();
        assert_eq!(gamble_step.value, Ratio::new(1, 4));

        // Same schedule prefix, losing gamble coins: the adversary plays
        // identically (it cannot see the future) but loses.
        let pv = solver
            .principal_variation(&GambleGame::new(), &mut Tape::new(vec![1, 0]), 100)
            .unwrap();
        assert_eq!(pv.schedule(), vec!["Flip", "Gamble"]);
        assert!(!GambleGame::is_bad(&pv.outcome));
    }

    #[test]
    fn principal_variation_respects_step_limit_and_labeler() {
        let mut solver = Solver::new(&GambleGame::is_bad, ExploreBudget::default())
            .with_labeler(|_, ev| format!("<{ev:?}>"));
        let err = solver
            .principal_variation(&GambleGame::new(), &mut Tape::new(vec![0]), 1)
            .unwrap_err();
        assert!(matches!(err, ExploreError::StepLimit { limit: 1 }));
        assert!(err.to_string().contains("step bound"));
        let pv = solver
            .principal_variation(&GambleGame::new(), &mut Tape::new(vec![0]), 100)
            .unwrap();
        assert_eq!(pv.schedule(), vec!["<Flip>", "<TakeWin>"]);
    }

    #[test]
    fn minimizing_solver_finds_the_benevolent_value() {
        let mut solver = Solver::new(&BranchGame::is_bad, ExploreBudget::default()).minimizing();
        let v = solver.solve(&BranchGame::new()).unwrap();
        assert_eq!(v, Ratio::ZERO);
        let pv = solver
            .principal_variation(&BranchGame::new(), &mut Tape::new(vec![]), 100)
            .unwrap();
        assert_eq!(pv.schedule(), vec!["Safe"]);
        assert!(!BranchGame::is_bad(&pv.outcome));
    }

    #[test]
    fn complementary_predicates_sum_to_one_without_adversary_power() {
        // For TwoCoinGame every adversary yields the same distribution, so
        // worst(bad) + best(!bad) = 1.
        let budget = ExploreBudget::default();
        let (p_bad, _) =
            worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        let not_bad = |o: &Outcome| !TwoCoinGame::is_bad(o);
        let (p_good_best, _) = best_case_prob(&TwoCoinGame::new(), &not_bad, &budget).unwrap();
        assert_eq!(p_bad + p_good_best, Ratio::ONE);
    }
}
