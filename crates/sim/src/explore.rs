//! Exact worst-case adversary probabilities by memoized expectimax.
//!
//! The paper defines `Prob[P(O) → B]` as the supremum of
//! `Prob[P(O)‖A → B]` over all strong adversaries `A` (Section 2.4). For the
//! finite systems in this workspace that supremum is the value of a finite
//! **expectimax game**:
//!
//! - at a `Running` state, the adversary picks the enabled event that
//!   *maximizes* the probability of reaching `B` — adversary scheduling
//!   decisions may depend on the entire state, including all random values
//!   drawn so far, which is exactly the strong-adversary information model;
//! - at an `AwaitingRandom` state, the value is the *uniform average* over
//!   the `|V|` branches — the adversary cannot see the future coin;
//! - at a `Done` state, the value is 1 if the outcome is in `B`, else 0.
//!
//! Values are exact [`Ratio`]s. States are memoized (the same global state
//! reached along different interleavings has the same game value), which is
//! what makes exhaustive exploration of protocol-level interleavings
//! feasible.

use crate::system::{Effects, Status, System};
use blunt_core::outcome::Outcome;
use blunt_core::ratio::Ratio;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Resource limits for an exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreBudget {
    /// Maximum number of distinct states to evaluate.
    pub max_states: usize,
    /// Memoize on 128-bit state fingerprints instead of full states.
    ///
    /// Cuts memo memory by roughly an order of magnitude, at the cost of a
    /// (cryptographically negligible for these state counts, but nonzero)
    /// hash-collision probability: with `N` distinct states the expected
    /// number of colliding pairs is about `N²/2¹²⁹`. Use for large sweeps;
    /// keep the exact memo for headline numbers.
    pub fingerprint: bool,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget {
            max_states: 5_000_000,
            fingerprint: false,
        }
    }
}

impl ExploreBudget {
    /// A budget of `max_states` distinct states.
    #[must_use]
    pub fn with_max_states(max_states: usize) -> ExploreBudget {
        ExploreBudget {
            max_states,
            fingerprint: false,
        }
    }

    /// Switches to fingerprint memoization (see [`ExploreBudget::fingerprint`]).
    #[must_use]
    pub fn fingerprinted(mut self) -> ExploreBudget {
        self.fingerprint = true;
        self
    }
}

/// A 128-bit state fingerprint from two independently-salted hashes.
fn fingerprint_of<S: std::hash::Hash>(s: &S) -> u128 {
    use std::hash::Hasher;
    let mut h1 = std::collections::hash_map::DefaultHasher::new();
    h1.write_u8(0x5a);
    s.hash(&mut h1);
    let mut h2 = std::collections::hash_map::DefaultHasher::new();
    h2.write_u64(0x1234_5678_9abc_def0);
    s.hash(&mut h2);
    (u128::from(h1.finish()) << 64) | u128::from(h2.finish())
}

/// A memo table keyed either by full states or by fingerprints.
enum Memo<S, V> {
    Exact(HashMap<S, V>),
    Finger(HashMap<u128, V>),
}

impl<S: System, V: Copy> Memo<S, V> {
    fn new(fingerprint: bool) -> Memo<S, V> {
        if fingerprint {
            Memo::Finger(HashMap::new())
        } else {
            Memo::Exact(HashMap::new())
        }
    }

    fn get(&self, s: &S) -> Option<V> {
        match self {
            Memo::Exact(m) => m.get(s).copied(),
            Memo::Finger(m) => m.get(&fingerprint_of(s)).copied(),
        }
    }

    fn insert(&mut self, s: &S, v: V) {
        match self {
            Memo::Exact(m) => {
                m.insert(s.clone(), v);
            }
            Memo::Finger(m) => {
                m.insert(fingerprint_of(s), v);
            }
        }
    }
}

/// Exploration failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExploreError {
    /// The state budget was exhausted before the value was determined.
    BudgetExceeded {
        /// States evaluated before giving up.
        explored: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::BudgetExceeded { explored } => {
                write!(f, "exploration budget exceeded after {explored} states")
            }
        }
    }
}

impl Error for ExploreError {}

/// Statistics from an exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Distinct states evaluated.
    pub states: usize,
    /// Memoization hits (re-converging interleavings).
    pub memo_hits: usize,
    /// Maximum recursion depth reached (longest execution prefix).
    pub max_depth: usize,
    /// Outgoing edges generated across all evaluated states (scheduler
    /// choices plus random branches) — `transitions / states` is the mean
    /// branching factor of the game.
    pub transitions: usize,
}

impl ExploreStats {
    /// Mean branching factor of the explored game (0.0 when empty).
    #[must_use]
    pub fn branching_factor(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            self.transitions as f64 / self.states as f64
        }
    }

    /// Adds these statistics to the global metrics under `prefix`:
    /// `<prefix>.solves`, `.states`, `.memo_hits`, `.transitions` (counters)
    /// and `<prefix>.max_depth_hwm` (high-water gauge).
    ///
    /// The explorer accumulates locally and flushes once per solve so the
    /// recursion itself carries no metric overhead.
    pub fn publish(&self, prefix: &str) {
        let g = blunt_obs::global();
        g.counter(&format!("{prefix}.solves")).inc();
        g.counter(&format!("{prefix}.states"))
            .add(self.states as u64);
        g.counter(&format!("{prefix}.memo_hits"))
            .add(self.memo_hits as u64);
        g.counter(&format!("{prefix}.transitions"))
            .add(self.transitions as u64);
        g.gauge(&format!("{prefix}.max_depth_hwm"))
            .record_max(self.max_depth as i64);
    }
}

/// Whether the scheduler is adversarial or benevolent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Objective {
    Maximize,
    Minimize,
}

struct Explorer<'a, S: System, F: ?Sized> {
    bad: &'a F,
    budget: ExploreBudget,
    objective: Objective,
    memo: Memo<S, Ratio>,
    stats: ExploreStats,
}

impl<'a, S, F> Explorer<'a, S, F>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    fn value(&mut self, sys: &S, depth: usize) -> Result<Ratio, ExploreError> {
        if let Some(v) = self.memo.get(sys) {
            self.stats.memo_hits += 1;
            return Ok(v);
        }
        if self.stats.states >= self.budget.max_states {
            return Err(ExploreError::BudgetExceeded {
                explored: self.stats.states,
            });
        }
        self.stats.states += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        let mut fx = Effects::silent();
        let v = match sys.status() {
            Status::Done => {
                if (self.bad)(&sys.outcome()) {
                    Ratio::ONE
                } else {
                    Ratio::ZERO
                }
            }
            Status::AwaitingRandom { choices, .. } => {
                debug_assert!(choices >= 1);
                self.stats.transitions += choices;
                let mut total = Ratio::ZERO;
                for c in 0..choices {
                    let mut next = sys.clone();
                    next.supply_random(c, &mut fx);
                    total += self.value(&next, depth + 1)?;
                }
                total / Ratio::from_int(choices as i128)
            }
            Status::Running => {
                let mut enabled = Vec::new();
                sys.enabled(&mut enabled);
                assert!(
                    !enabled.is_empty(),
                    "System contract violation: Running with no enabled events"
                );
                self.stats.transitions += enabled.len();
                let mut best: Option<Ratio> = None;
                for ev in &enabled {
                    let mut next = sys.clone();
                    next.apply(ev, &mut fx);
                    let v = self.value(&next, depth + 1)?;
                    let better = match (self.objective, best) {
                        (_, None) => true,
                        (Objective::Maximize, Some(b)) => v > b,
                        (Objective::Minimize, Some(b)) => v < b,
                    };
                    if better {
                        best = Some(v);
                    }
                    // The value of any strategy is in [0, 1]; stop early at
                    // the extremum.
                    match (self.objective, best) {
                        (Objective::Maximize, Some(b)) if b == Ratio::ONE => break,
                        (Objective::Minimize, Some(b)) if b == Ratio::ZERO => break,
                        _ => {}
                    }
                }
                best.expect("non-empty enabled set")
            }
        };
        self.memo.insert(sys, v);
        Ok(v)
    }
}

fn explore<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
    objective: Objective,
) -> Result<(Ratio, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    let mut ex = Explorer {
        bad,
        budget: *budget,
        objective,
        memo: Memo::new(budget.fingerprint),
        stats: ExploreStats::default(),
    };
    let v = ex.value(sys, 0)?;
    ex.stats.publish("sim.explore");
    Ok((v, ex.stats))
}

/// Computes `Prob[P(O) → B]` — the **exact worst-case** probability of the
/// outcome set `B` (defined by the predicate `bad`) over all strong
/// adversaries.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
///
/// # Panics
///
/// Panics if the system violates the progress contract (`Running` with no
/// enabled events).
///
/// ```
/// use blunt_sim::{worst_case_prob, ExploreBudget};
/// use blunt_sim::toy::TwoCoinGame;
/// use blunt_core::ratio::Ratio;
///
/// // Two independent fair coins match with probability 1/2 — and no
/// // adversary can change that.
/// let (p, stats) = worst_case_prob(
///     &TwoCoinGame::new(),
///     &TwoCoinGame::is_bad,
///     &ExploreBudget::default(),
/// ).unwrap();
/// assert_eq!(p, Ratio::new(1, 2));
/// assert!(stats.states > 0);
/// ```
pub fn worst_case_prob<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
) -> Result<(Ratio, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    explore(sys, bad, budget, Objective::Maximize)
}

/// Computes the **best-case** probability of `B` — the value under the most
/// *benevolent* scheduler. The spread between [`worst_case_prob`] and this
/// value quantifies how much of the bad-outcome probability is adversarial.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
pub fn best_case_prob<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
) -> Result<(Ratio, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    explore(sys, bad, budget, Objective::Minimize)
}

/// Decides whether the adversary can force the bad outcome **with
/// probability one** — i.e. whether `Prob[P(O) → B] = 1`.
///
/// This is a Boolean AND–OR reachability question, much cheaper than the
/// exact expectimax: an adversary node is a *sure win* iff **some** child is
/// (OR), a random node iff **all** children are (AND: the adversary must win
/// for every coin outcome), a terminal node iff its outcome is bad. Used to
/// certify the paper's Appendix A.2 claim (plain ABD: nontermination forced
/// surely) on the full game rather than a single witness schedule.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
///
/// # Panics
///
/// Panics if the system violates the progress contract.
pub fn sure_win<S, F>(
    sys: &S,
    bad: &F,
    budget: &ExploreBudget,
) -> Result<(bool, ExploreStats), ExploreError>
where
    S: System,
    F: Fn(&Outcome) -> bool + ?Sized,
{
    struct BoolExplorer<'a, S: System, F: ?Sized> {
        bad: &'a F,
        budget: ExploreBudget,
        memo: Memo<S, bool>,
        stats: ExploreStats,
    }
    impl<'a, S, F> BoolExplorer<'a, S, F>
    where
        S: System,
        F: Fn(&Outcome) -> bool + ?Sized,
    {
        fn wins(&mut self, sys: &S, depth: usize) -> Result<bool, ExploreError> {
            if let Some(v) = self.memo.get(sys) {
                self.stats.memo_hits += 1;
                return Ok(v);
            }
            if self.stats.states >= self.budget.max_states {
                return Err(ExploreError::BudgetExceeded {
                    explored: self.stats.states,
                });
            }
            self.stats.states += 1;
            self.stats.max_depth = self.stats.max_depth.max(depth);
            let mut fx = Effects::silent();
            let v = match sys.status() {
                Status::Done => (self.bad)(&sys.outcome()),
                Status::AwaitingRandom { choices, .. } => {
                    self.stats.transitions += choices;
                    let mut all = true;
                    for c in 0..choices {
                        let mut next = sys.clone();
                        next.supply_random(c, &mut fx);
                        if !self.wins(&next, depth + 1)? {
                            all = false;
                            break;
                        }
                    }
                    all
                }
                Status::Running => {
                    let mut enabled = Vec::new();
                    sys.enabled(&mut enabled);
                    assert!(!enabled.is_empty(), "Running with no enabled events");
                    self.stats.transitions += enabled.len();
                    let mut any = false;
                    for ev in &enabled {
                        let mut next = sys.clone();
                        next.apply(ev, &mut fx);
                        if self.wins(&next, depth + 1)? {
                            any = true;
                            break;
                        }
                    }
                    any
                }
            };
            self.memo.insert(sys, v);
            Ok(v)
        }
    }
    let mut ex = BoolExplorer {
        bad,
        budget: *budget,
        memo: Memo::new(budget.fingerprint),
        stats: ExploreStats::default(),
    };
    let v = ex.wins(sys, 0)?;
    ex.stats.publish("sim.explore");
    Ok((v, ex.stats))
}

/// Enumerates the set of outcomes reachable under *any* adversary and *any*
/// random values — the program's outcome set of Proposition 2.1.
///
/// Theorem 4.1 (`O^k ≡ O`) and Proposition 2.1 together predict that a
/// program has the **same outcome set** over equivalent objects; comparing
/// the sets returned here for `P(O_a)`, `P(O)` and `P(O^k)` tests that
/// prediction directly.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the state budget runs out.
///
/// # Panics
///
/// Panics if the system violates the progress contract.
pub fn reachable_outcomes<S: System>(
    sys: &S,
    budget: &ExploreBudget,
) -> Result<(std::collections::BTreeSet<Outcome>, ExploreStats), ExploreError> {
    let mut seen: Memo<S, ()> = Memo::new(budget.fingerprint);
    let mut outcomes = std::collections::BTreeSet::new();
    let mut stats = ExploreStats::default();
    let mut stack = vec![(sys.clone(), 0usize)];
    let mut fx = Effects::silent();
    while let Some((cur, depth)) = stack.pop() {
        if seen.get(&cur).is_some() {
            stats.memo_hits += 1;
            continue;
        }
        if stats.states >= budget.max_states {
            return Err(ExploreError::BudgetExceeded {
                explored: stats.states,
            });
        }
        stats.states += 1;
        stats.max_depth = stats.max_depth.max(depth);
        seen.insert(&cur, ());
        match cur.status() {
            Status::Done => {
                outcomes.insert(cur.outcome());
            }
            Status::AwaitingRandom { choices, .. } => {
                stats.transitions += choices;
                for c in 0..choices {
                    let mut next = cur.clone();
                    next.supply_random(c, &mut fx);
                    stack.push((next, depth + 1));
                }
            }
            Status::Running => {
                let mut enabled = Vec::new();
                cur.enabled(&mut enabled);
                assert!(!enabled.is_empty(), "Running with no enabled events");
                stats.transitions += enabled.len();
                for ev in &enabled {
                    let mut next = cur.clone();
                    next.apply(ev, &mut fx);
                    stack.push((next, depth + 1));
                }
            }
        }
    }
    stats.publish("sim.explore");
    Ok((outcomes, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{BranchGame, TwoCoinGame};

    #[test]
    fn branch_game_worst_is_half_best_is_zero() {
        let budget = ExploreBudget::default();
        let (worst, _) = worst_case_prob(&BranchGame::new(), &BranchGame::is_bad, &budget).unwrap();
        let (best, _) = best_case_prob(&BranchGame::new(), &BranchGame::is_bad, &budget).unwrap();
        assert_eq!(worst, Ratio::new(1, 2));
        assert_eq!(best, Ratio::ZERO);
    }

    #[test]
    fn two_coin_game_has_no_adversarial_spread() {
        let budget = ExploreBudget::default();
        let (worst, _) =
            worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        let (best, _) = best_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        assert_eq!(worst, Ratio::new(1, 2));
        assert_eq!(best, Ratio::new(1, 2));
    }

    #[test]
    fn sure_win_matches_exact_values() {
        let budget = ExploreBudget::default();
        // BranchGame: worst case 1/2 < 1, so no sure win.
        let (w, _) = sure_win(&BranchGame::new(), &BranchGame::is_bad, &budget).unwrap();
        assert!(!w);
        // But the *good* outcome can be forced surely (take Safe).
        let good = |o: &Outcome| !BranchGame::is_bad(o);
        let (w, _) = sure_win(&BranchGame::new(), &good, &budget).unwrap();
        assert!(w);
        // TwoCoinGame: nothing is sure.
        let (w, _) = sure_win(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        assert!(!w);
    }

    #[test]
    fn reachable_outcomes_enumerates_all_leaves() {
        let (outs, stats) =
            reachable_outcomes(&TwoCoinGame::new(), &ExploreBudget::default()).unwrap();
        // Four coin combinations → four distinct outcomes.
        assert_eq!(outs.len(), 4);
        assert!(stats.states > 4);
        let bad: usize = outs.iter().filter(|o| TwoCoinGame::is_bad(o)).count();
        assert_eq!(bad, 2);

        let (outs, _) = reachable_outcomes(&BranchGame::new(), &ExploreBudget::default()).unwrap();
        // Safe (good), risky-good, risky-bad — but safe and risky-good
        // record different values? Safe records Int(0) (bad=false), risky
        // with coin 0 also records Int(0): they collapse. So 2 outcomes.
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn fingerprint_memo_reproduces_exact_values() {
        let exact = ExploreBudget::default();
        let finger = ExploreBudget::default().fingerprinted();
        let (a, _) = worst_case_prob(&BranchGame::new(), &BranchGame::is_bad, &exact).unwrap();
        let (b, _) = worst_case_prob(&BranchGame::new(), &BranchGame::is_bad, &finger).unwrap();
        assert_eq!(a, b);
        let (a, _) = worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &exact).unwrap();
        let (b, _) = worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &finger).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let budget = ExploreBudget::with_max_states(1);
        let err = worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap_err();
        assert!(matches!(err, ExploreError::BudgetExceeded { .. }));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn stats_track_depth_and_states() {
        let (_, stats) = worst_case_prob(
            &TwoCoinGame::new(),
            &TwoCoinGame::is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
        // Path: step, coin, step, coin, done = depth ≥ 4.
        assert!(stats.max_depth >= 4);
        assert!(stats.states >= 5);
    }

    #[test]
    fn complementary_predicates_sum_to_one_without_adversary_power() {
        // For TwoCoinGame every adversary yields the same distribution, so
        // worst(bad) + best(!bad) = 1.
        let budget = ExploreBudget::default();
        let (p_bad, _) =
            worst_case_prob(&TwoCoinGame::new(), &TwoCoinGame::is_bad, &budget).unwrap();
        let not_bad = |o: &Outcome| !TwoCoinGame::is_bad(o);
        let (p_good_best, _) = best_case_prob(&TwoCoinGame::new(), &not_bad, &budget).unwrap();
        assert_eq!(p_bad + p_good_best, Ratio::ONE);
    }
}
