//! Schedulers — executable adversaries.
//!
//! A scheduler resolves the *scheduling* nondeterminism of a [`System`]: at
//! every `Running` point it picks one of the enabled events. Because it
//! receives the whole system state, a scheduler is a **strong** adversary in
//! the paper's sense — it sees every random value drawn so far (they are part
//! of the state) but not future ones.
//!
//! Three reusable schedulers live here; protocol-specific adversaries (such
//! as the Figure 1 schedule) are built in `blunt-adversary` on top of
//! [`ScriptedScheduler`].

use crate::rng::{RandomSource, SplitMix64};
use crate::system::System;
use std::collections::VecDeque;

/// A strong adversary: picks the index of the next event to apply.
pub trait Scheduler<S: System> {
    /// Chooses an index into `enabled` (which is non-empty).
    fn pick(&mut self, sys: &S, enabled: &[S::Event]) -> usize;
}

/// The deterministic scheduler that always applies the first enabled event.
///
/// Because [`crate::network::Network`] keeps messages in canonical order,
/// `FirstEnabled` yields a fixed, reproducible (generally uninteresting)
/// execution — useful as a smoke-test adversary.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FirstEnabled;

impl<S: System> Scheduler<S> for FirstEnabled {
    fn pick(&mut self, _sys: &S, _enabled: &[S::Event]) -> usize {
        blunt_obs::static_counter!("sim.sched.picks.first_enabled").inc();
        0
    }
}

/// A uniformly random scheduler, seeded for reproducibility.
///
/// Random scheduling approximates a "fair, oblivious" environment; comparing
/// outcome frequencies under `RandomScheduler` against the exact worst case
/// from the explorer shows how much of the bad-outcome probability is
/// genuinely *adversarial*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            rng: SplitMix64::new(seed),
        }
    }
}

impl<S: System> Scheduler<S> for RandomScheduler {
    fn pick(&mut self, _sys: &S, enabled: &[S::Event]) -> usize {
        blunt_obs::static_counter!("sim.sched.picks.random").inc();
        blunt_obs::static_histogram!("sim.sched.branching").record(enabled.len() as u64);
        self.rng.draw(enabled.len())
    }
}

/// A matcher examining the enabled events and optionally selecting one.
pub type EventMatcher<E> = Box<dyn FnMut(&[E]) -> Option<usize>>;

/// A scheduler that follows a script of [`EventMatcher`]s, then falls back to
/// first-enabled.
///
/// Each matcher is consulted once, in order, with the currently enabled
/// events; it returns the index of the event to schedule. Scripts encode
/// hand-constructed adversarial executions — the reproduction of the paper's
/// Figure 1 is a `ScriptedScheduler` whose matchers select specific message
/// deliveries.
///
/// # Panics
///
/// [`Scheduler::pick`] panics if a matcher returns `None` (the scripted event
/// is not enabled — the script no longer corresponds to the system) or an
/// out-of-range index. Failing loudly is deliberate: a silently-diverging
/// script would invalidate the experiment it encodes.
pub struct ScriptedScheduler<E> {
    script: VecDeque<EventMatcher<E>>,
    consumed: usize,
}

impl<E> ScriptedScheduler<E> {
    /// Creates a scheduler from a script of matchers.
    #[must_use]
    pub fn new(script: Vec<EventMatcher<E>>) -> ScriptedScheduler<E> {
        ScriptedScheduler {
            script: script.into(),
            consumed: 0,
        }
    }

    /// Number of script entries already consumed.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Returns `true` if the script has been fully consumed (subsequent picks
    /// fall back to first-enabled).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.script.is_empty()
    }
}

impl<S: System> Scheduler<S> for ScriptedScheduler<S::Event> {
    fn pick(&mut self, _sys: &S, enabled: &[S::Event]) -> usize {
        blunt_obs::static_counter!("sim.sched.picks.scripted").inc();
        match self.script.pop_front() {
            Some(mut matcher) => {
                self.consumed += 1;
                let idx = matcher(enabled).unwrap_or_else(|| {
                    panic!(
                        "scripted scheduler: entry {} matched no enabled event; enabled = {:?}",
                        self.consumed, enabled
                    )
                });
                assert!(
                    idx < enabled.len(),
                    "scripted scheduler: entry {} returned out-of-range index {idx}",
                    self.consumed
                );
                idx
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::BranchGame;

    #[test]
    fn first_enabled_picks_zero() {
        let sys = BranchGame::new();
        let mut enabled = Vec::new();
        sys.enabled(&mut enabled);
        let mut s = FirstEnabled;
        assert_eq!(Scheduler::<BranchGame>::pick(&mut s, &sys, &enabled), 0);
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let sys = BranchGame::new();
        let mut enabled = Vec::new();
        sys.enabled(&mut enabled);
        let mut a = RandomScheduler::new(9);
        let mut b = RandomScheduler::new(9);
        for _ in 0..10 {
            assert_eq!(
                Scheduler::<BranchGame>::pick(&mut a, &sys, &enabled),
                Scheduler::<BranchGame>::pick(&mut b, &sys, &enabled)
            );
        }
    }

    #[test]
    fn scripted_scheduler_follows_script_then_falls_back() {
        let sys = BranchGame::new();
        let mut enabled = Vec::new();
        sys.enabled(&mut enabled);
        let mut s: ScriptedScheduler<_> =
            ScriptedScheduler::new(vec![Box::new(|evs: &[_]| (evs.len() > 1).then_some(1))]);
        assert!(!s.is_exhausted());
        assert_eq!(Scheduler::<BranchGame>::pick(&mut s, &sys, &enabled), 1);
        assert!(s.is_exhausted());
        assert_eq!(s.consumed(), 1);
        assert_eq!(Scheduler::<BranchGame>::pick(&mut s, &sys, &enabled), 0);
    }

    #[test]
    #[should_panic(expected = "matched no enabled event")]
    fn scripted_scheduler_panics_on_mismatch() {
        let sys = BranchGame::new();
        let mut enabled = Vec::new();
        sys.enabled(&mut enabled);
        let mut s: ScriptedScheduler<_> = ScriptedScheduler::new(vec![Box::new(|_: &[_]| None)]);
        let _ = Scheduler::<BranchGame>::pick(&mut s, &sys, &enabled);
    }
}
