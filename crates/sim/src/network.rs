//! The asynchronous message-passing substrate.
//!
//! Messages in transit form a multiset; the adversary decides which in-flight
//! message is delivered next, in any order (no FIFO guarantee — the Figure 1
//! adversary depends on reordering replies). Processes can crash; a crashed
//! process takes no further steps and messages addressed to it are never
//! delivered (they remain undeliverable rather than being dropped, which
//! keeps `apply` monotone and states canonical).
//!
//! The multiset is kept **sorted** so that two network states with the same
//! in-flight messages are equal and hash identically — a requirement for the
//! explorer's memoization to collapse equivalent interleavings.

use blunt_core::ids::Pid;
use std::fmt::Debug;
use std::hash::Hash;

/// A message in flight from `src` to `dst`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Envelope<M> {
    /// Sender.
    pub src: Pid,
    /// Addressee.
    pub dst: Pid,
    /// Payload.
    pub msg: M,
}

/// The network: a canonically ordered multiset of in-flight envelopes plus
/// the crash set.
///
/// ```
/// use blunt_sim::network::Network;
/// use blunt_core::ids::Pid;
///
/// let mut net: Network<u8> = Network::new(3);
/// net.broadcast(Pid(0), 7);           // includes a self-addressed copy
/// assert_eq!(net.in_flight(), 3);
/// let slots = net.deliverable();
/// assert_eq!(slots.len(), 3);
/// let env = net.take(slots[0]);
/// assert_eq!(env.msg, 7);
/// assert_eq!(net.in_flight(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Network<M> {
    /// Sorted multiset of in-flight envelopes.
    queue: Vec<Envelope<M>>,
    /// Bitmask of crashed processes.
    crashed: u64,
    /// Number of processes.
    n: usize,
}

impl<M: Clone + Ord + Hash + Debug> Network<M> {
    /// An empty network over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 64 (the crash mask width).
    #[must_use]
    pub fn new(n: usize) -> Network<M> {
        assert!((1..=64).contains(&n), "network supports 1..=64 processes");
        Network {
            queue: Vec::new(),
            crashed: 0,
            n,
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Number of messages in flight (including undeliverable ones addressed
    /// to crashed processes).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Sends one message, preserving canonical order.
    ///
    /// Sends from crashed processes are ignored (a crashed process takes no
    /// steps, so this is belt-and-braces for protocol code).
    pub fn send(&mut self, src: Pid, dst: Pid, msg: M) {
        if self.is_crashed(src) {
            return;
        }
        let env = Envelope { src, dst, msg };
        let pos = self.queue.partition_point(|e| *e <= env);
        self.queue.insert(pos, env);
        // Counters aggregate over every state the network passes through —
        // including clones visited by the explorer, which is the point: they
        // expose the total message volume behind a verdict. They live in the
        // global registry, never in `self`, so `Eq`/`Hash` stay structural.
        blunt_obs::static_counter!("sim.net.sends").inc();
        blunt_obs::static_gauge!("sim.net.in_flight_hwm").record_max(self.queue.len() as i64);
    }

    /// Broadcasts a message from `src` to **all** processes, including `src`
    /// itself — the ABD convention (a process answers its own queries).
    pub fn broadcast(&mut self, src: Pid, msg: M) {
        for d in 0..self.n {
            self.send(src, Pid(d as u32), msg.clone());
        }
    }

    /// Indices of deliverable envelopes, with duplicates collapsed: if two
    /// identical envelopes are in flight, delivering either yields the same
    /// successor state, so only the first index is reported. Envelopes
    /// addressed to crashed processes are omitted.
    #[must_use]
    pub fn deliverable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut prev: Option<&Envelope<M>> = None;
        for (i, e) in self.queue.iter().enumerate() {
            if self.is_crashed(e.dst) {
                continue;
            }
            if prev != Some(e) {
                out.push(i);
            }
            prev = Some(e);
        }
        out
    }

    /// Looks at a deliverable envelope without removing it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn peek(&self, index: usize) -> &Envelope<M> {
        &self.queue[index]
    }

    /// Removes and returns the envelope at `index` (as reported by
    /// [`Network::deliverable`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take(&mut self, index: usize) -> Envelope<M> {
        blunt_obs::static_counter!("sim.net.deliveries").inc();
        self.queue.remove(index)
    }

    /// Crashes a process: it is removed from the deliverable set forever.
    pub fn crash(&mut self, pid: Pid) {
        self.crashed |= 1u64 << pid.index();
    }

    /// Returns `true` if `pid` has crashed.
    #[must_use]
    pub fn is_crashed(&self, pid: Pid) -> bool {
        self.crashed & (1u64 << pid.index()) != 0
    }

    /// Number of crashed processes.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.crashed.count_ones() as usize
    }

    /// Iterates over all in-flight envelopes in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Envelope<M>> {
        self.queue.iter()
    }

    /// Retains only the envelopes for which `keep` returns `true`.
    ///
    /// Used by protocol layers to drop messages that have become
    /// semantically inert (e.g. replies to a superseded ABD exchange) — a
    /// soundness-preserving state-space reduction for the explorer.
    pub fn purge<F: FnMut(&Envelope<M>) -> bool>(&mut self, keep: F) {
        self.queue.retain(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_keeps_queue_sorted() {
        let mut net: Network<u8> = Network::new(4);
        net.send(Pid(3), Pid(0), 9);
        net.send(Pid(0), Pid(1), 5);
        net.send(Pid(0), Pid(1), 3);
        let msgs: Vec<_> = net.iter().cloned().collect();
        assert!(msgs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(net.in_flight(), 3);
    }

    #[test]
    fn equal_contents_hash_equal_regardless_of_send_order() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;

        let mut a: Network<u8> = Network::new(2);
        a.send(Pid(0), Pid(1), 1);
        a.send(Pid(1), Pid(0), 2);
        let mut b: Network<u8> = Network::new(2);
        b.send(Pid(1), Pid(0), 2);
        b.send(Pid(0), Pid(1), 1);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn deliverable_deduplicates_identical_envelopes() {
        let mut net: Network<u8> = Network::new(2);
        net.send(Pid(0), Pid(1), 1);
        net.send(Pid(0), Pid(1), 1);
        net.send(Pid(0), Pid(1), 2);
        assert_eq!(net.in_flight(), 3);
        assert_eq!(net.deliverable().len(), 2);
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut net: Network<u8> = Network::new(3);
        net.broadcast(Pid(1), 7);
        let dsts: Vec<_> = net.iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![Pid(0), Pid(1), Pid(2)]);
        assert!(net.iter().all(|e| e.src == Pid(1)));
    }

    #[test]
    fn crashed_destination_is_not_deliverable() {
        let mut net: Network<u8> = Network::new(2);
        net.send(Pid(0), Pid(1), 1);
        net.send(Pid(1), Pid(0), 2);
        net.crash(Pid(1));
        let slots = net.deliverable();
        assert_eq!(slots.len(), 1);
        assert_eq!(net.peek(slots[0]).dst, Pid(0));
        assert!(net.is_crashed(Pid(1)));
        assert_eq!(net.crash_count(), 1);
    }

    #[test]
    fn crashed_source_sends_nothing() {
        let mut net: Network<u8> = Network::new(2);
        net.crash(Pid(0));
        net.send(Pid(0), Pid(1), 1);
        net.broadcast(Pid(0), 2);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn take_removes_exactly_one_copy() {
        let mut net: Network<u8> = Network::new(2);
        net.send(Pid(0), Pid(1), 1);
        net.send(Pid(0), Pid(1), 1);
        let slots = net.deliverable();
        let env = net.take(slots[0]);
        assert_eq!(env.msg, 1);
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_process_network_panics() {
        let _: Network<u8> = Network::new(0);
    }
}
