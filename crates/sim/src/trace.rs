//! Execution traces and Figure-1-style timeline rendering.
//!
//! A [`Trace`] is the externally visible record of one execution: call and
//! return actions (forming the history, Section 2.1), message deliveries,
//! random steps, preamble-boundary markers, and crashes. Traces feed the
//! linearizability checkers (via [`Trace::history`]) and the pretty printer
//! that reproduces the style of the paper's Figure 1.

use blunt_core::history::{Action, History};
use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use std::fmt;

/// One observable event of an execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A method invocation began (a call transition).
    Call {
        /// Unique invocation id.
        inv: InvId,
        /// Invoking process.
        pid: Pid,
        /// Target object.
        obj: ObjId,
        /// Method.
        method: MethodId,
        /// Argument.
        arg: Val,
        /// Syntactic call site in the program.
        site: CallSite,
    },
    /// A method invocation returned (a return transition).
    Return {
        /// Invocation id.
        inv: InvId,
        /// Process.
        pid: Pid,
        /// Returned value.
        val: Val,
    },
    /// A message was delivered.
    Deliver {
        /// Sender.
        src: Pid,
        /// Receiver.
        dst: Pid,
        /// Human-readable payload description.
        label: String,
    },
    /// A process took an internal protocol step.
    Internal {
        /// Process.
        pid: Pid,
        /// Step description.
        label: String,
    },
    /// An invocation passed the control point `Π(M)` ending its preamble
    /// (possibly one of `k` iterations in a transformed object).
    PreamblePassed {
        /// Invocation id.
        inv: InvId,
        /// Process.
        pid: Pid,
        /// Which preamble iteration just completed (1-based).
        iteration: u32,
    },
    /// A *program* random step (`random(V)` in the program text).
    ProgramRandom {
        /// Process.
        pid: Pid,
        /// `|V|`.
        choices: usize,
        /// The drawn index.
        chosen: usize,
    },
    /// An *object* random step (the iteration choice inside `O^k`).
    ObjectRandom {
        /// Process.
        pid: Pid,
        /// Invocation the choice belongs to.
        inv: InvId,
        /// `k`.
        choices: usize,
        /// The drawn iteration index (0-based).
        chosen: usize,
    },
    /// A process crashed.
    Crash {
        /// Process.
        pid: Pid,
    },
}

impl TraceEvent {
    /// The process this event belongs to (the receiver, for deliveries).
    #[must_use]
    pub fn pid(&self) -> Pid {
        match self {
            TraceEvent::Call { pid, .. }
            | TraceEvent::Return { pid, .. }
            | TraceEvent::Internal { pid, .. }
            | TraceEvent::PreamblePassed { pid, .. }
            | TraceEvent::ProgramRandom { pid, .. }
            | TraceEvent::ObjectRandom { pid, .. }
            | TraceEvent::Crash { pid } => *pid,
            TraceEvent::Deliver { dst, .. } => *dst,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Call {
                pid,
                obj,
                method,
                arg,
                inv,
                ..
            } => write!(f, "{pid}: call {method}({arg}) on {obj} [{inv}]"),
            TraceEvent::Return { pid, val, inv } => {
                write!(f, "{pid}: return {val} [{inv}]")
            }
            TraceEvent::Deliver { src, dst, label } => {
                write!(f, "{dst}: deliver {label} from {src}")
            }
            TraceEvent::Internal { pid, label } => write!(f, "{pid}: {label}"),
            TraceEvent::PreamblePassed {
                pid,
                inv,
                iteration,
            } => write!(f, "{pid}: preamble #{iteration} done [{inv}]"),
            TraceEvent::ProgramRandom {
                pid,
                choices,
                chosen,
            } => write!(f, "{pid}: random({choices}) -> {chosen} (program)"),
            TraceEvent::ObjectRandom {
                pid,
                inv,
                choices,
                chosen,
            } => write!(f, "{pid}: random({choices}) -> {chosen} (object, {inv})"),
            TraceEvent::Crash { pid } => write!(f, "{pid}: CRASH"),
        }
    }
}

/// The trace of one execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends events.
    pub fn extend(&mut self, events: Vec<TraceEvent>) {
        self.events.extend(events);
    }

    /// All events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Projects the trace onto its call/return actions — the history of the
    /// execution (Section 2.1).
    #[must_use]
    pub fn history(&self) -> History {
        let mut h = History::new();
        for ev in &self.events {
            match ev {
                TraceEvent::Call {
                    inv,
                    pid,
                    obj,
                    method,
                    arg,
                    ..
                } => h.push(Action::Call {
                    inv: *inv,
                    pid: *pid,
                    obj: *obj,
                    method: *method,
                    arg: arg.clone(),
                }),
                TraceEvent::Return { inv, val, .. } => h.push(Action::Return {
                    inv: *inv,
                    val: val.clone(),
                }),
                _ => {}
            }
        }
        h
    }

    /// Per-event-kind counts over the whole trace, computed in one pass.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for ev in &self.events {
            match ev {
                TraceEvent::Call { .. } => s.calls += 1,
                TraceEvent::Return { .. } => s.returns += 1,
                TraceEvent::Deliver { .. } => s.deliveries += 1,
                TraceEvent::Internal { .. } => s.internals += 1,
                TraceEvent::PreamblePassed { .. } => s.preambles_passed += 1,
                TraceEvent::ProgramRandom { .. } => s.program_randoms += 1,
                TraceEvent::ObjectRandom { .. } => s.object_randoms += 1,
                TraceEvent::Crash { .. } => s.crashes += 1,
            }
        }
        s
    }

    /// Number of message deliveries (a proxy for message complexity; used by
    /// the cost-vs-`k` experiment E8). Shorthand for
    /// [`Trace::summary`]`().deliveries`.
    #[must_use]
    pub fn delivery_count(&self) -> usize {
        self.summary().deliveries
    }

    /// Number of program random steps taken. Shorthand for
    /// [`Trace::summary`]`().program_randoms`.
    #[must_use]
    pub fn program_random_count(&self) -> usize {
        self.summary().program_randoms
    }

    /// Number of object random steps taken (introduced by `O^k`). Shorthand
    /// for [`Trace::summary`]`().object_randoms`.
    #[must_use]
    pub fn object_random_count(&self) -> usize {
        self.summary().object_randoms
    }

    /// Renders a per-process timeline in the style of the paper's Figure 1:
    /// one column per process, time flowing downward.
    #[must_use]
    pub fn timeline(&self, n: usize) -> String {
        let width = 30usize;
        let mut out = String::new();
        for p in 0..n {
            let cell = format!("p{p}");
            out.push_str(&format!("{cell:^width$}"));
        }
        out.push('\n');
        for _ in 0..n {
            out.push_str(&format!("{:-^width$}", ""));
        }
        out.push('\n');
        for ev in &self.events {
            let col = ev.pid().index().min(n - 1);
            let text = ev.to_string();
            // Strip the leading "pX: " for compactness; the column encodes it.
            let text = text.split_once(": ").map_or(text.as_str(), |x| x.1);
            let mut text = text.to_string();
            if text.len() > width - 2 {
                text.truncate(width - 3);
                text.push('…');
            }
            for p in 0..n {
                if p == col {
                    out.push_str(&format!("{text:^width$}"));
                } else {
                    out.push_str(&format!("{:^width$}", "·"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            writeln!(f, "{i:4}  {ev}")?;
        }
        Ok(())
    }
}

/// Per-event-kind counts of one [`Trace`] (see [`Trace::summary`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TraceSummary {
    /// Method invocations.
    pub calls: usize,
    /// Method returns.
    pub returns: usize,
    /// Message deliveries.
    pub deliveries: usize,
    /// Internal protocol steps.
    pub internals: usize,
    /// Preamble-boundary markers.
    pub preambles_passed: usize,
    /// Program random steps.
    pub program_randoms: usize,
    /// Object random steps.
    pub object_randoms: usize,
    /// Process crashes.
    pub crashes: usize,
}

impl TraceSummary {
    /// Total events counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.calls
            + self.returns
            + self.deliveries
            + self.internals
            + self.preambles_passed
            + self.program_randoms
            + self.object_randoms
            + self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.extend(vec![
            TraceEvent::Call {
                inv: InvId(0),
                pid: Pid(0),
                obj: ObjId(0),
                method: MethodId::WRITE,
                arg: Val::Int(0),
                site: CallSite::new(Pid(0), 3, 0),
            },
            TraceEvent::Deliver {
                src: Pid(0),
                dst: Pid(1),
                label: "query".into(),
            },
            TraceEvent::ProgramRandom {
                pid: Pid(1),
                choices: 2,
                chosen: 1,
            },
            TraceEvent::ObjectRandom {
                pid: Pid(0),
                inv: InvId(0),
                choices: 2,
                chosen: 0,
            },
            TraceEvent::PreamblePassed {
                inv: InvId(0),
                pid: Pid(0),
                iteration: 1,
            },
            TraceEvent::Return {
                inv: InvId(0),
                pid: Pid(0),
                val: Val::Nil,
            },
        ]);
        t
    }

    #[test]
    fn history_projects_calls_and_returns() {
        let h = sample_trace().history();
        assert_eq!(h.len(), 2);
        assert!(h.is_well_formed());
        assert!(h.is_sequential());
    }

    #[test]
    fn counters_count_their_kinds() {
        let t = sample_trace();
        assert_eq!(t.delivery_count(), 1);
        assert_eq!(t.program_random_count(), 1);
        assert_eq!(t.object_random_count(), 1);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn summary_counts_every_kind_once() {
        let mut t = sample_trace();
        t.extend(vec![
            TraceEvent::Internal {
                pid: Pid(1),
                label: "ack".into(),
            },
            TraceEvent::Crash { pid: Pid(2) },
        ]);
        let s = t.summary();
        assert_eq!(s.calls, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.deliveries, 1);
        assert_eq!(s.internals, 1);
        assert_eq!(s.preambles_passed, 1);
        assert_eq!(s.program_randoms, 1);
        assert_eq!(s.object_randoms, 1);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.total(), t.len());
    }

    #[test]
    fn timeline_has_one_row_per_event_plus_header() {
        let t = sample_trace();
        let tl = t.timeline(3);
        assert_eq!(tl.lines().count(), 2 + t.len());
        assert!(tl.contains("query"));
    }

    #[test]
    fn display_numbers_events() {
        let s = sample_trace().to_string();
        assert!(s.contains("   0  p0: call Write(0) on obj0"));
        assert!(s.contains("random(2) -> 1 (program)"));
    }

    #[test]
    fn event_pid_uses_receiver_for_deliveries() {
        let ev = TraceEvent::Deliver {
            src: Pid(0),
            dst: Pid(2),
            label: "x".into(),
        };
        assert_eq!(ev.pid(), Pid(2));
    }
}
