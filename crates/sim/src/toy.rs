//! Tiny example systems used in tests, documentation, and benchmarks.
//!
//! These games exercise every part of the [`crate::System`] contract
//! — adversary choice, program randomness, termination — with state spaces
//! small enough to verify by hand.

use crate::system::{Effects, RandomKind, Status, System};
use crate::trace::TraceEvent;
use blunt_core::ids::{CallSite, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;

/// A one-shot adversary-vs-coin game.
///
/// The adversary chooses between two events:
///
/// - `Risky`: the process flips a fair coin; the outcome is *bad* iff the
///   coin shows 1 — bad with probability 1/2;
/// - `Safe`: the game ends immediately with a good outcome.
///
/// Hence the worst-case (adversarial) probability of the bad outcome is 1/2
/// and the best case is 0 — the minimal example where scheduling power
/// matters.
///
/// ```
/// use blunt_sim::toy::{BranchGame, BranchMove};
/// use blunt_sim::{worst_case_prob, ExploreBudget};
/// use blunt_core::ratio::Ratio;
///
/// let (p, _) = worst_case_prob(
///     &BranchGame::new(),
///     &BranchGame::is_bad,
///     &ExploreBudget::default(),
/// ).unwrap();
/// assert_eq!(p, Ratio::new(1, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BranchGame {
    state: BranchState,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BranchState {
    Start,
    Flipping,
    Done { bad: bool },
}

/// Moves of [`BranchGame`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchMove {
    /// Flip the coin; bad iff it lands 1.
    Risky,
    /// End the game with a good outcome.
    Safe,
}

impl BranchGame {
    /// A fresh game.
    #[must_use]
    pub fn new() -> BranchGame {
        BranchGame {
            state: BranchState::Start,
        }
    }

    /// The bad-outcome predicate for this game.
    #[must_use]
    pub fn is_bad(outcome: &Outcome) -> bool {
        outcome.get(&BranchGame::site()) == Some(&Val::Int(1))
    }

    fn site() -> CallSite {
        CallSite::new(Pid(0), 1, 0)
    }
}

impl Default for BranchGame {
    fn default() -> Self {
        BranchGame::new()
    }
}

impl System for BranchGame {
    type Event = BranchMove;

    fn process_count(&self) -> usize {
        1
    }

    fn enabled(&self, out: &mut Vec<BranchMove>) {
        out.clear();
        if self.state == BranchState::Start {
            out.push(BranchMove::Risky);
            out.push(BranchMove::Safe);
        }
    }

    fn apply(&mut self, ev: &BranchMove, _fx: &mut Effects) {
        assert_eq!(self.state, BranchState::Start, "apply in non-Running state");
        self.state = match ev {
            BranchMove::Risky => BranchState::Flipping,
            BranchMove::Safe => BranchState::Done { bad: false },
        };
    }

    fn supply_random(&mut self, choice: usize, fx: &mut Effects) {
        assert_eq!(self.state, BranchState::Flipping);
        fx.push(TraceEvent::ProgramRandom {
            pid: Pid(0),
            choices: 2,
            chosen: choice,
        });
        self.state = BranchState::Done { bad: choice == 1 };
    }

    fn status(&self) -> Status {
        match self.state {
            BranchState::Start => Status::Running,
            BranchState::Flipping => Status::AwaitingRandom {
                pid: Pid(0),
                choices: 2,
                kind: RandomKind::Program,
            },
            BranchState::Done { .. } => Status::Done,
        }
    }

    fn outcome(&self) -> Outcome {
        let mut o = Outcome::new();
        if let BranchState::Done { bad } = self.state {
            o.record(BranchGame::site(), Val::Int(i64::from(bad)));
        }
        o
    }
}

/// A two-coin matching game with **no** adversary power.
///
/// Two fair coins are flipped in sequence (the adversary's only "choice" is
/// the single enabled `Step` event between them); the outcome is bad iff the
/// coins match. Bad probability is exactly 1/2 under every adversary — the
/// baseline case where worst and best coincide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TwoCoinGame {
    phase: u8,
    first: Option<bool>,
    second: Option<bool>,
}

/// The only move of [`TwoCoinGame`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepMove;

impl TwoCoinGame {
    /// A fresh game.
    #[must_use]
    pub fn new() -> TwoCoinGame {
        TwoCoinGame {
            phase: 0,
            first: None,
            second: None,
        }
    }

    /// Bad-outcome predicate: the two coins match.
    #[must_use]
    pub fn is_bad(outcome: &Outcome) -> bool {
        let a = outcome.get(&CallSite::new(Pid(0), 1, 0));
        let b = outcome.get(&CallSite::new(Pid(0), 2, 0));
        a.is_some() && a == b
    }
}

impl Default for TwoCoinGame {
    fn default() -> Self {
        TwoCoinGame::new()
    }
}

impl System for TwoCoinGame {
    type Event = StepMove;

    fn process_count(&self) -> usize {
        1
    }

    fn enabled(&self, out: &mut Vec<StepMove>) {
        out.clear();
        // Phases 0 and 2 are scheduling points; 1 and 3 await randomness.
        if self.phase == 0 || self.phase == 2 {
            out.push(StepMove);
        }
    }

    fn apply(&mut self, _ev: &StepMove, _fx: &mut Effects) {
        assert!(self.phase == 0 || self.phase == 2);
        self.phase += 1;
    }

    fn supply_random(&mut self, choice: usize, fx: &mut Effects) {
        fx.push(TraceEvent::ProgramRandom {
            pid: Pid(0),
            choices: 2,
            chosen: choice,
        });
        match self.phase {
            1 => self.first = Some(choice == 1),
            3 => self.second = Some(choice == 1),
            _ => panic!("supply_random in non-flipping phase"),
        }
        self.phase += 1;
    }

    fn status(&self) -> Status {
        match self.phase {
            0 | 2 => Status::Running,
            1 | 3 => Status::AwaitingRandom {
                pid: Pid(0),
                choices: 2,
                kind: RandomKind::Program,
            },
            _ => Status::Done,
        }
    }

    fn outcome(&self) -> Outcome {
        let mut o = Outcome::new();
        if let Some(a) = self.first {
            o.record(CallSite::new(Pid(0), 1, 0), Val::Int(i64::from(a)));
        }
        if let Some(b) = self.second {
            o.record(CallSite::new(Pid(0), 2, 0), Val::Int(i64::from(b)));
        }
        o
    }
}

/// A branching gamble with exact adversarial value **5/8** — the same value
/// as the fused `ABD²` weakener game, in a four-state toy.
///
/// Play: the adversary schedules the coin flip; then, *knowing the coin*,
/// picks a branch:
///
/// - coin 0: choose `TakeWin` (bad surely) or `TakeLoss` (good surely) —
///   the maximizing adversary takes the win, value 1;
/// - coin 1: choose `TakeLoss` (good surely) or `Gamble` — the gamble is
///   bad only if **two** further fair coins both land 1, value 1/4, which
///   still beats the sure loss.
///
/// Value: `1/2·1 + 1/2·1/4 = 5/8`. The optimal move differs across the two
/// coin branches, so a principal variation per coin tape exercises exactly
/// the "adversary as a function of observed randomness" structure that the
/// Figure 1 script (`blunt-adversary::fig1`) spells out for ABD — at toy
/// scale.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GambleGame {
    state: GambleState,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum GambleState {
    Start,
    Flipping,
    CoinZero,
    CoinOne,
    GambleFirst,
    GambleSecond,
    Done { bad: bool },
}

/// Moves of [`GambleGame`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GambleMove {
    /// Schedule the opening coin flip.
    Flip,
    /// End the game with a bad outcome (enabled after coin 0).
    TakeWin,
    /// End the game with a good outcome (enabled after either coin).
    TakeLoss,
    /// Enter the two-coin gamble (enabled after coin 1).
    Gamble,
}

impl GambleGame {
    /// A fresh game.
    #[must_use]
    pub fn new() -> GambleGame {
        GambleGame {
            state: GambleState::Start,
        }
    }

    /// The bad-outcome predicate for this game.
    #[must_use]
    pub fn is_bad(outcome: &Outcome) -> bool {
        outcome.get(&GambleGame::site()) == Some(&Val::Int(1))
    }

    fn site() -> CallSite {
        CallSite::new(Pid(0), 9, 0)
    }
}

impl Default for GambleGame {
    fn default() -> Self {
        GambleGame::new()
    }
}

impl System for GambleGame {
    type Event = GambleMove;

    fn process_count(&self) -> usize {
        1
    }

    fn enabled(&self, out: &mut Vec<GambleMove>) {
        out.clear();
        match self.state {
            GambleState::Start => out.push(GambleMove::Flip),
            GambleState::CoinZero => {
                out.push(GambleMove::TakeWin);
                out.push(GambleMove::TakeLoss);
            }
            GambleState::CoinOne => {
                out.push(GambleMove::TakeLoss);
                out.push(GambleMove::Gamble);
            }
            _ => {}
        }
    }

    fn apply(&mut self, ev: &GambleMove, _fx: &mut Effects) {
        self.state = match (self.state, ev) {
            (GambleState::Start, GambleMove::Flip) => GambleState::Flipping,
            (GambleState::CoinZero, GambleMove::TakeWin) => GambleState::Done { bad: true },
            (GambleState::CoinZero | GambleState::CoinOne, GambleMove::TakeLoss) => {
                GambleState::Done { bad: false }
            }
            (GambleState::CoinOne, GambleMove::Gamble) => GambleState::GambleFirst,
            (s, e) => panic!("illegal move {e:?} in state {s:?}"),
        };
    }

    fn supply_random(&mut self, choice: usize, fx: &mut Effects) {
        fx.push(TraceEvent::ProgramRandom {
            pid: Pid(0),
            choices: 2,
            chosen: choice,
        });
        self.state = match self.state {
            GambleState::Flipping => {
                if choice == 0 {
                    GambleState::CoinZero
                } else {
                    GambleState::CoinOne
                }
            }
            GambleState::GambleFirst => {
                if choice == 1 {
                    GambleState::GambleSecond
                } else {
                    GambleState::Done { bad: false }
                }
            }
            GambleState::GambleSecond => GambleState::Done { bad: choice == 1 },
            s => panic!("supply_random in non-flipping state {s:?}"),
        };
    }

    fn status(&self) -> Status {
        match self.state {
            GambleState::Start | GambleState::CoinZero | GambleState::CoinOne => Status::Running,
            GambleState::Flipping | GambleState::GambleFirst | GambleState::GambleSecond => {
                Status::AwaitingRandom {
                    pid: Pid(0),
                    choices: 2,
                    kind: RandomKind::Program,
                }
            }
            GambleState::Done { .. } => Status::Done,
        }
    }

    fn outcome(&self) -> Outcome {
        let mut o = Outcome::new();
        if let GambleState::Done { bad } = self.state {
            o.record(GambleGame::site(), Val::Int(i64::from(bad)));
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_game_moves_and_status() {
        let mut g = BranchGame::new();
        assert_eq!(g.status(), Status::Running);
        let mut evs = Vec::new();
        g.enabled(&mut evs);
        assert_eq!(evs, vec![BranchMove::Risky, BranchMove::Safe]);

        let mut fx = Effects::silent();
        g.apply(&BranchMove::Safe, &mut fx);
        assert_eq!(g.status(), Status::Done);
        assert!(!BranchGame::is_bad(&g.outcome()));
    }

    #[test]
    fn branch_game_risky_path_awaits_random() {
        let mut g = BranchGame::new();
        let mut fx = Effects::silent();
        g.apply(&BranchMove::Risky, &mut fx);
        assert!(matches!(
            g.status(),
            Status::AwaitingRandom { choices: 2, .. }
        ));
        g.supply_random(1, &mut fx);
        assert_eq!(g.status(), Status::Done);
        assert!(BranchGame::is_bad(&g.outcome()));
    }

    #[test]
    fn gamble_game_exact_value_is_five_eighths() {
        use crate::explore::{worst_case_prob, ExploreBudget};
        use blunt_core::ratio::Ratio;
        let (p, _) = worst_case_prob(
            &GambleGame::new(),
            &GambleGame::is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
        assert_eq!(p, Ratio::new(5, 8));
    }

    #[test]
    fn gamble_game_branches_run_to_completion() {
        let mut fx = Effects::silent();
        // Coin 0, take the win: bad.
        let mut g = GambleGame::new();
        g.apply(&GambleMove::Flip, &mut fx);
        g.supply_random(0, &mut fx);
        let mut evs = Vec::new();
        g.enabled(&mut evs);
        assert_eq!(evs, vec![GambleMove::TakeWin, GambleMove::TakeLoss]);
        g.apply(&GambleMove::TakeWin, &mut fx);
        assert_eq!(g.status(), Status::Done);
        assert!(GambleGame::is_bad(&g.outcome()));

        // Coin 1, gamble, first gamble coin 0: good (no second coin drawn).
        let mut g = GambleGame::new();
        g.apply(&GambleMove::Flip, &mut fx);
        g.supply_random(1, &mut fx);
        g.enabled(&mut evs);
        assert_eq!(evs, vec![GambleMove::TakeLoss, GambleMove::Gamble]);
        g.apply(&GambleMove::Gamble, &mut fx);
        g.supply_random(0, &mut fx);
        assert_eq!(g.status(), Status::Done);
        assert!(!GambleGame::is_bad(&g.outcome()));

        // Coin 1, gamble, both gamble coins 1: bad.
        let mut g = GambleGame::new();
        g.apply(&GambleMove::Flip, &mut fx);
        g.supply_random(1, &mut fx);
        g.apply(&GambleMove::Gamble, &mut fx);
        g.supply_random(1, &mut fx);
        g.supply_random(1, &mut fx);
        assert_eq!(g.status(), Status::Done);
        assert!(GambleGame::is_bad(&g.outcome()));
    }

    #[test]
    fn two_coin_game_runs_to_completion() {
        let mut g = TwoCoinGame::new();
        let mut fx = Effects::silent();
        let mut evs = Vec::new();
        g.enabled(&mut evs);
        g.apply(&StepMove, &mut fx);
        g.supply_random(0, &mut fx);
        g.enabled(&mut evs);
        g.apply(&StepMove, &mut fx);
        g.supply_random(0, &mut fx);
        assert_eq!(g.status(), Status::Done);
        assert!(TwoCoinGame::is_bad(&g.outcome())); // 0 == 0: matched.
    }
}
