//! Monte Carlo estimation of outcome probabilities under a fixed scheduler
//! family.
//!
//! Where the exact explorer is infeasible (or as an independent check of it),
//! [`estimate`] runs a system many times under per-trial seeded schedulers
//! and random sources and reports the empirical frequency of the bad outcome
//! with a Wilson confidence interval.

use crate::kernel::{run, RunError};
use crate::rng::SplitMix64;
use crate::sched::Scheduler;
use crate::system::System;
use blunt_core::outcome::Outcome;

/// An empirical estimate of an event probability.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Estimate {
    /// Trials in which the event occurred.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
}

impl Estimate {
    /// The point estimate `successes / trials`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(self.trials > 0, "estimate with zero trials");
        self.successes as f64 / self.trials as f64
    }

    /// The Wilson score interval at normal quantile `z` (e.g. `1.96` for a
    /// 95% interval). Preferred over the naive normal interval because the
    /// estimated probabilities here are frequently near 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    #[must_use]
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        assert!(self.trials > 0, "estimate with zero trials");
        let n = self.trials as f64;
        let p = self.mean();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// Estimates `Prob[bad]` over `trials` runs.
///
/// - `make_system()` produces a fresh system per trial;
/// - `make_scheduler(seed)` produces the trial's scheduler (pass a
///   constructor like `RandomScheduler::new` for an oblivious environment);
/// - `bad` is the outcome-set predicate `B`;
/// - random steps are resolved by a per-trial [`SplitMix64`] derived from
///   `base_seed`, so the whole estimate is reproducible.
///
/// # Errors
///
/// Propagates the first [`RunError`] encountered (step limit or stuck).
pub fn estimate<S, Sch, F, MS, MSch>(
    make_system: MS,
    make_scheduler: MSch,
    bad: F,
    trials: usize,
    base_seed: u64,
    max_steps: usize,
) -> Result<Estimate, RunError>
where
    S: System,
    Sch: Scheduler<S>,
    F: Fn(&Outcome) -> bool,
    MS: Fn() -> S,
    MSch: Fn(u64) -> Sch,
{
    let mut successes = 0usize;
    for t in 0..trials {
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t as u64);
        let mut sched = make_scheduler(seed);
        let mut rng = SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03);
        let report = run(make_system(), &mut sched, &mut rng, false, max_steps)?;
        if bad(&report.outcome) {
            successes += 1;
        }
    }
    blunt_obs::static_counter!("sim.montecarlo.estimates").inc();
    blunt_obs::static_counter!("sim.montecarlo.trials").add(trials as u64);
    blunt_obs::static_counter!("sim.montecarlo.bad_outcomes").add(successes as u64);
    Ok(Estimate { successes, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{FirstEnabled, RandomScheduler};
    use crate::toy::{BranchGame, TwoCoinGame};

    #[test]
    fn two_coin_estimate_is_near_half() {
        let est = estimate(
            TwoCoinGame::new,
            RandomScheduler::new,
            TwoCoinGame::is_bad,
            4_000,
            11,
            100,
        )
        .unwrap();
        let (lo, hi) = est.wilson_interval(3.0);
        assert!(lo <= 0.5 && 0.5 <= hi, "interval [{lo}, {hi}] misses 0.5");
    }

    #[test]
    fn first_enabled_on_branch_game_always_goes_risky() {
        // FirstEnabled always picks Risky, so the frequency estimates the
        // coin: about 1/2.
        let est = estimate(
            BranchGame::new,
            |_| FirstEnabled,
            BranchGame::is_bad,
            2_000,
            7,
            100,
        )
        .unwrap();
        let m = est.mean();
        assert!((0.4..0.6).contains(&m), "mean {m} far from 0.5");
    }

    #[test]
    fn estimate_is_reproducible() {
        let a = estimate(
            TwoCoinGame::new,
            RandomScheduler::new,
            TwoCoinGame::is_bad,
            500,
            3,
            100,
        )
        .unwrap();
        let b = estimate(
            TwoCoinGame::new,
            RandomScheduler::new,
            TwoCoinGame::is_bad,
            500,
            3,
            100,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wilson_interval_is_clamped_and_ordered() {
        let e = Estimate {
            successes: 0,
            trials: 10,
        };
        let (lo, hi) = e.wilson_interval(1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 1.0);
        let e = Estimate {
            successes: 10,
            trials: 10,
        };
        let (lo, hi) = e.wilson_interval(1.96);
        assert!(lo > 0.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn zero_trials_mean_panics() {
        let _ = Estimate {
            successes: 0,
            trials: 0,
        }
        .mean();
    }
}
