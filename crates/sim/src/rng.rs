//! Deterministic random sources.
//!
//! `random(V)` steps are resolved in one of three ways:
//!
//! - the **explorer** branches over all `|V|` alternatives exactly — no
//!   random source involved;
//! - the **kernel** resolves them from a [`RandomSource`]: either a seeded
//!   [`SplitMix64`] generator (Monte Carlo) or a replayable [`Tape`]
//!   (reproducing one specific execution, e.g. one branch of Figure 1).
//!
//! Every source is `Clone` and fully deterministic so that executions are
//! replayable from `(seed/tape, schedule)` — the paper's
//! `e[P(O), v⃗, s⃗]` notation made concrete.

/// A source of uniformly distributed choice indices.
pub trait RandomSource {
    /// Draws a value uniformly from `0..choices`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `choices == 0`, and a [`Tape`] panics when
    /// exhausted or when a recorded value is out of range.
    fn draw(&mut self, choices: usize) -> usize;
}

/// The splitmix64 generator: tiny, fast, deterministic, dependency-free.
///
/// Not cryptographic — it resolves simulated coin flips, nothing more.
///
/// ```
/// use blunt_sim::rng::{RandomSource, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// let xs: Vec<usize> = (0..8).map(|_| a.draw(6)).collect();
/// let ys: Vec<usize> = (0..8).map(|_| b.draw(6)).collect();
/// assert_eq!(xs, ys);
/// assert!(xs.iter().all(|&x| x < 6));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Advances the generator and returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RandomSource for SplitMix64 {
    fn draw(&mut self, choices: usize) -> usize {
        assert!(choices > 0, "draw from empty choice set");
        // Rejection sampling for exact uniformity.
        let choices_u = choices as u64;
        let zone = u64::MAX - (u64::MAX % choices_u);
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % choices_u) as usize;
            }
        }
    }
}

/// A fixed tape of pre-recorded random values — the paper's sequence `v⃗`.
///
/// Drawing consumes the tape from the front; each recorded value must be in
/// range for the `choices` at its position. Tapes make specific probability-
/// space points executable: the two branches of the Figure 1 case analysis
/// are the tapes `[0]` and `[1]`.
///
/// ```
/// use blunt_sim::rng::{RandomSource, Tape};
/// let mut t = Tape::new(vec![1, 0]);
/// assert_eq!(t.draw(2), 1);
/// assert_eq!(t.draw(3), 0);
/// assert!(t.is_exhausted());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Tape {
    values: Vec<usize>,
    cursor: usize,
}

impl Tape {
    /// A tape replaying the given values in order.
    #[must_use]
    pub fn new(values: Vec<usize>) -> Tape {
        Tape { values, cursor: 0 }
    }

    /// Returns `true` if every value has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.values.len()
    }

    /// Number of values not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.values.len() - self.cursor
    }
}

impl RandomSource for Tape {
    fn draw(&mut self, choices: usize) -> usize {
        assert!(choices > 0, "draw from empty choice set");
        assert!(
            self.cursor < self.values.len(),
            "random tape exhausted after {} values",
            self.values.len()
        );
        let v = self.values[self.cursor];
        assert!(
            v < choices,
            "tape value {v} out of range for {choices} choices at position {}",
            self.cursor
        );
        self.cursor += 1;
        v
    }
}

/// A source that records every drawn value, wrapping another source.
///
/// Used to capture the observed random sequence of an execution so that it
/// can be replayed exactly with a [`Tape`].
#[derive(Clone, Debug)]
pub struct Recording<R> {
    inner: R,
    log: Vec<usize>,
}

impl<R: RandomSource> Recording<R> {
    /// Wraps a source.
    #[must_use]
    pub fn new(inner: R) -> Recording<R> {
        Recording {
            inner,
            log: Vec::new(),
        }
    }

    /// The values drawn so far, in order.
    #[must_use]
    pub fn log(&self) -> &[usize] {
        &self.log
    }

    /// Unwraps into the recorded tape.
    #[must_use]
    pub fn into_tape(self) -> Tape {
        Tape::new(self.log)
    }
}

impl<R: RandomSource> RandomSource for Recording<R> {
    fn draw(&mut self, choices: usize) -> usize {
        let v = self.inner.draw(choices);
        self.log.push(v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let xa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn splitmix_draw_is_roughly_uniform() {
        let mut g = SplitMix64::new(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[g.draw(4)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty choice set")]
    fn draw_zero_choices_panics() {
        SplitMix64::new(0).draw(0);
    }

    #[test]
    fn tape_replays_and_reports_remaining() {
        let mut t = Tape::new(vec![0, 1, 2]);
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.draw(1), 0);
        assert_eq!(t.draw(2), 1);
        assert_eq!(t.remaining(), 1);
        assert!(!t.is_exhausted());
        assert_eq!(t.draw(3), 2);
        assert!(t.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "tape exhausted")]
    fn exhausted_tape_panics() {
        Tape::new(vec![]).draw(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tape_value_panics() {
        Tape::new(vec![5]).draw(2);
    }

    #[test]
    fn recording_captures_the_observed_sequence() {
        let mut r = Recording::new(SplitMix64::new(3));
        let drawn: Vec<usize> = (0..5).map(|_| r.draw(10)).collect();
        assert_eq!(r.log(), &drawn[..]);
        let mut replay = r.into_tape();
        let replayed: Vec<usize> = (0..5).map(|_| replay.draw(10)).collect();
        assert_eq!(replayed, drawn);
    }
}
