//! Structured (JSONL) export and import of traces and run summaries.
//!
//! This module is the bridge between the simulator's [`Trace`] type and the
//! `blunt-obs` record layer: every [`TraceEvent`] converts losslessly to and
//! from a [`Json`] object, so a recorded execution can be written with a
//! [`blunt_obs::JsonlSink`], parsed back, and compared for equality (the
//! round-trip is tested in `tests/trace_roundtrip.rs`). The record schema is
//! documented in `docs/OBS_SCHEMA.md`.

use crate::kernel::RunReport;
use crate::trace::{Trace, TraceEvent};
use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::{Json, Recorder};

/// Serializes a [`Val`] as a tagged JSON value: `null` for `Nil`, a number
/// for `Int`, `{"pair":[a,b]}` and `{"tuple":[...]}` for composites.
#[must_use]
pub fn val_to_json(v: &Val) -> Json {
    match v {
        Val::Nil => Json::Null,
        Val::Int(i) => Json::Int(*i),
        Val::Pair(p) => Json::Obj(vec![(
            "pair".into(),
            Json::Arr(vec![val_to_json(&p.0), val_to_json(&p.1)]),
        )]),
        Val::Tuple(t) => Json::Obj(vec![(
            "tuple".into(),
            Json::Arr(t.iter().map(val_to_json).collect()),
        )]),
    }
}

/// Parses a [`Val`] back from [`val_to_json`] form; `None` on malformed
/// input.
#[must_use]
pub fn val_from_json(j: &Json) -> Option<Val> {
    match j {
        Json::Null => Some(Val::Nil),
        Json::Int(_) | Json::UInt(_) => j.as_i64().map(Val::Int),
        Json::Obj(_) => {
            if let Some(pair) = j.get("pair").and_then(Json::as_arr) {
                let [a, b] = pair else { return None };
                Some(Val::pair(val_from_json(a)?, val_from_json(b)?))
            } else if let Some(tuple) = j.get("tuple").and_then(Json::as_arr) {
                tuple
                    .iter()
                    .map(val_from_json)
                    .collect::<Option<Vec<_>>>()
                    .map(Val::Tuple)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn obj(kind: &str, fields: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::Str("event".into())),
        ("kind".to_string(), Json::Str(kind.into())),
    ];
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// Serializes one [`TraceEvent`] as an `event` record.
#[must_use]
pub fn event_to_json(ev: &TraceEvent) -> Json {
    let u = |v: u64| Json::UInt(v);
    match ev {
        TraceEvent::Call {
            inv,
            pid,
            obj: o,
            method,
            arg,
            site,
        } => obj(
            "call",
            vec![
                ("inv".into(), u(inv.0)),
                ("pid".into(), u(u64::from(pid.0))),
                ("obj".into(), u(u64::from(o.0))),
                ("method".into(), u(u64::from(method.0))),
                ("arg".into(), val_to_json(arg)),
                (
                    "site".into(),
                    Json::Arr(vec![
                        u(u64::from(site.pid.0)),
                        u(u64::from(site.line)),
                        u(u64::from(site.occurrence)),
                    ]),
                ),
            ],
        ),
        TraceEvent::Return { inv, pid, val } => obj(
            "return",
            vec![
                ("inv".into(), u(inv.0)),
                ("pid".into(), u(u64::from(pid.0))),
                ("val".into(), val_to_json(val)),
            ],
        ),
        TraceEvent::Deliver { src, dst, label } => obj(
            "deliver",
            vec![
                ("src".into(), u(u64::from(src.0))),
                ("dst".into(), u(u64::from(dst.0))),
                ("label".into(), Json::Str(label.clone())),
            ],
        ),
        TraceEvent::Internal { pid, label } => obj(
            "internal",
            vec![
                ("pid".into(), u(u64::from(pid.0))),
                ("label".into(), Json::Str(label.clone())),
            ],
        ),
        TraceEvent::PreamblePassed {
            inv,
            pid,
            iteration,
        } => obj(
            "preamble_passed",
            vec![
                ("inv".into(), u(inv.0)),
                ("pid".into(), u(u64::from(pid.0))),
                ("iteration".into(), u(u64::from(*iteration))),
            ],
        ),
        TraceEvent::ProgramRandom {
            pid,
            choices,
            chosen,
        } => obj(
            "program_random",
            vec![
                ("pid".into(), u(u64::from(pid.0))),
                ("choices".into(), u(*choices as u64)),
                ("chosen".into(), u(*chosen as u64)),
            ],
        ),
        TraceEvent::ObjectRandom {
            pid,
            inv,
            choices,
            chosen,
        } => obj(
            "object_random",
            vec![
                ("pid".into(), u(u64::from(pid.0))),
                ("inv".into(), u(inv.0)),
                ("choices".into(), u(*choices as u64)),
                ("chosen".into(), u(*chosen as u64)),
            ],
        ),
        TraceEvent::Crash { pid } => obj("crash", vec![("pid".into(), u(u64::from(pid.0)))]),
    }
}

/// Parses a [`TraceEvent`] back from an `event` record; `None` on malformed
/// input or an unknown `kind`.
#[must_use]
pub fn event_from_json(j: &Json) -> Option<TraceEvent> {
    if j.get("type").and_then(Json::as_str) != Some("event") {
        return None;
    }
    let pid = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .map(Pid)
    };
    let inv = || j.get("inv").and_then(Json::as_u64).map(InvId);
    let label = |key: &str| j.get(key).and_then(Json::as_str).map(str::to_string);
    let count = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .and_then(|v| usize::try_from(v).ok())
    };
    match j.get("kind").and_then(Json::as_str)? {
        "call" => {
            let site = j.get("site").and_then(Json::as_arr)?;
            let [sp, sl, so] = site else { return None };
            Some(TraceEvent::Call {
                inv: inv()?,
                pid: pid("pid")?,
                obj: ObjId(u32::try_from(j.get("obj").and_then(Json::as_u64)?).ok()?),
                method: MethodId(u16::try_from(j.get("method").and_then(Json::as_u64)?).ok()?),
                arg: val_from_json(j.get("arg")?)?,
                site: CallSite::new(
                    Pid(u32::try_from(sp.as_u64()?).ok()?),
                    u16::try_from(sl.as_u64()?).ok()?,
                    u16::try_from(so.as_u64()?).ok()?,
                ),
            })
        }
        "return" => Some(TraceEvent::Return {
            inv: inv()?,
            pid: pid("pid")?,
            val: val_from_json(j.get("val")?)?,
        }),
        "deliver" => Some(TraceEvent::Deliver {
            src: pid("src")?,
            dst: pid("dst")?,
            label: label("label")?,
        }),
        "internal" => Some(TraceEvent::Internal {
            pid: pid("pid")?,
            label: label("label")?,
        }),
        "preamble_passed" => Some(TraceEvent::PreamblePassed {
            inv: inv()?,
            pid: pid("pid")?,
            iteration: u32::try_from(j.get("iteration").and_then(Json::as_u64)?).ok()?,
        }),
        "program_random" => Some(TraceEvent::ProgramRandom {
            pid: pid("pid")?,
            choices: count("choices")?,
            chosen: count("chosen")?,
        }),
        "object_random" => Some(TraceEvent::ObjectRandom {
            pid: pid("pid")?,
            inv: inv()?,
            choices: count("choices")?,
            chosen: count("chosen")?,
        }),
        "crash" => Some(TraceEvent::Crash { pid: pid("pid")? }),
        _ => None,
    }
}

/// Writes every event of `trace` to `rec`, one `event` record per event.
pub fn record_trace(trace: &Trace, rec: &mut dyn Recorder) {
    for ev in trace.events() {
        rec.record(&event_to_json(ev));
    }
}

/// Reassembles a [`Trace`] from a stream of records, ignoring records that
/// are not `event`s (e.g. interleaved `metric` or `run_summary` lines).
#[must_use]
pub fn trace_from_records(records: &[Json]) -> Option<Trace> {
    let mut t = Trace::new();
    let mut events = Vec::new();
    for r in records {
        if r.get("type").and_then(Json::as_str) == Some("event") {
            events.push(event_from_json(r)?);
        }
    }
    t.extend(events);
    Some(t)
}

/// Serializes a [`RunReport`] as a `run_summary` record: outcome, steps,
/// random draws, and the per-event-kind counts of [`Trace::summary`].
#[must_use]
pub fn run_summary_json(label: &str, report: &RunReport) -> Json {
    let s = report.trace.summary();
    let u = |v: usize| Json::UInt(v as u64);
    Json::Obj(vec![
        ("type".into(), Json::Str("run_summary".into())),
        ("label".into(), Json::Str(label.into())),
        ("outcome".into(), Json::Str(report.outcome.to_string())),
        ("steps".into(), u(report.steps)),
        (
            "random_draws".into(),
            Json::Arr(report.random_draws.iter().map(|&d| u(d)).collect()),
        ),
        ("calls".into(), u(s.calls)),
        ("returns".into(), u(s.returns)),
        ("deliveries".into(), u(s.deliveries)),
        ("internals".into(), u(s.internals)),
        ("preambles_passed".into(), u(s.preambles_passed)),
        ("program_randoms".into(), u(s.program_randoms)),
        ("object_randoms".into(), u(s.object_randoms)),
        ("crashes".into(), u(s.crashes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_round_trips() {
        for v in [
            Val::Nil,
            Val::Int(-3),
            Val::pair(Val::Int(1), Val::Nil),
            Val::Tuple(vec![Val::Int(0), Val::pair(Val::Int(2), Val::Int(3))]),
        ] {
            let j = val_to_json(&v);
            let text = j.to_string();
            let back = val_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, v, "round trip of {text}");
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            TraceEvent::Call {
                inv: InvId(4),
                pid: Pid(1),
                obj: ObjId(0),
                method: MethodId::WRITE,
                arg: Val::Int(9),
                site: CallSite::new(Pid(1), 7, 2),
            },
            TraceEvent::Return {
                inv: InvId(4),
                pid: Pid(1),
                val: Val::pair(Val::Int(1), Val::Int(2)),
            },
            TraceEvent::Deliver {
                src: Pid(0),
                dst: Pid(2),
                label: "query sn=3 \"quoted\"".into(),
            },
            TraceEvent::Internal {
                pid: Pid(2),
                label: "phase2".into(),
            },
            TraceEvent::PreamblePassed {
                inv: InvId(4),
                pid: Pid(1),
                iteration: 2,
            },
            TraceEvent::ProgramRandom {
                pid: Pid(0),
                choices: 2,
                chosen: 1,
            },
            TraceEvent::ObjectRandom {
                pid: Pid(0),
                inv: InvId(4),
                choices: 3,
                chosen: 0,
            },
            TraceEvent::Crash { pid: Pid(2) },
        ];
        for ev in &events {
            let text = event_to_json(ev).to_string();
            let back = event_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, ev, "round trip of {text}");
        }
        // Whole-trace reassembly, with a foreign record interleaved.
        let mut records: Vec<Json> = events.iter().map(event_to_json).collect();
        records.insert(
            3,
            Json::Obj(vec![("type".into(), Json::Str("metric".into()))]),
        );
        let mut t = Trace::new();
        t.extend(events);
        assert_eq!(trace_from_records(&records).unwrap(), t);
    }

    #[test]
    fn malformed_events_are_rejected_not_mangled() {
        assert!(
            event_from_json(&Json::parse(r#"{"type":"event","kind":"warp"}"#).unwrap()).is_none()
        );
        assert!(
            event_from_json(&Json::parse(r#"{"type":"event","kind":"crash"}"#).unwrap()).is_none()
        );
        assert!(event_from_json(&Json::parse(r#"{"kind":"crash","pid":0}"#).unwrap()).is_none());
    }
}
