//! The execution kernel: runs a [`System`] to completion under a scheduler
//! and a random source, producing a [`RunReport`].
//!
//! One kernel run is one execution `e[P(O), v⃗, s⃗]` of the paper: the random
//! source supplies `v⃗`, the scheduler supplies `s⃗`.

use crate::rng::RandomSource;
use crate::sched::Scheduler;
use crate::system::{Effects, Status, System};
use crate::trace::Trace;
use blunt_core::outcome::Outcome;
use std::error::Error;
use std::fmt;

/// Why a run failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The step limit was reached before the program completed.
    StepLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The system reported `Running` but had no enabled events — a violation
    /// of the [`System`] contract (or an over-aggressive crash pattern that
    /// destroyed the quorum a protocol needs).
    Stuck {
        /// Steps executed before the system got stuck.
        steps: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimit { limit } => {
                write!(f, "step limit of {limit} reached before completion")
            }
            RunError::Stuck { steps } => {
                write!(f, "system stuck with no enabled events after {steps} steps")
            }
        }
    }
}

impl Error for RunError {}

/// The result of one complete run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The final outcome of the execution.
    pub outcome: Outcome,
    /// The recorded trace (empty if tracing was disabled).
    pub trace: Trace,
    /// Number of scheduled events applied.
    pub steps: usize,
    /// The observed random sequence `v⃗` (one entry per `random(V)` step).
    pub random_draws: Vec<usize>,
}

/// Runs `sys` to completion.
///
/// - `sched` resolves every scheduling choice (the adversary);
/// - `rng` resolves every `random(V)` step;
/// - `tracing` enables trace recording;
/// - `max_steps` bounds the number of scheduled events.
///
/// # Errors
///
/// Returns [`RunError::StepLimit`] if the bound is hit and
/// [`RunError::Stuck`] if the system violates the progress contract.
///
/// ```
/// use blunt_sim::kernel::run;
/// use blunt_sim::rng::Tape;
/// use blunt_sim::sched::FirstEnabled;
/// use blunt_sim::toy::TwoCoinGame;
///
/// let report = run(
///     TwoCoinGame::new(),
///     &mut FirstEnabled,
///     &mut Tape::new(vec![1, 0]),
///     true,
///     100,
/// ).unwrap();
/// assert_eq!(report.random_draws, vec![1, 0]);
/// assert!(!TwoCoinGame::is_bad(&report.outcome));
/// ```
pub fn run<S, Sch, R>(
    mut sys: S,
    sched: &mut Sch,
    rng: &mut R,
    tracing: bool,
    max_steps: usize,
) -> Result<RunReport, RunError>
where
    S: System,
    Sch: Scheduler<S>,
    R: RandomSource,
{
    let mut fx = if tracing {
        Effects::recording()
    } else {
        Effects::silent()
    };
    let mut trace = Trace::new();
    let mut enabled = Vec::new();
    let mut steps = 0usize;
    let mut random_draws = Vec::new();

    loop {
        match sys.status() {
            Status::Done => {
                break;
            }
            Status::AwaitingRandom { choices, .. } => {
                let choice = rng.draw(choices);
                random_draws.push(choice);
                sys.supply_random(choice, &mut fx);
            }
            Status::Running => {
                if steps >= max_steps {
                    return Err(RunError::StepLimit { limit: max_steps });
                }
                sys.enabled(&mut enabled);
                if enabled.is_empty() {
                    return Err(RunError::Stuck { steps });
                }
                let idx = sched.pick(&sys, &enabled);
                debug_assert!(idx < enabled.len(), "scheduler returned bad index");
                let ev = enabled[idx].clone();
                sys.apply(&ev, &mut fx);
                steps += 1;
            }
        }
        if tracing {
            trace.extend(fx.take());
        }
    }
    if tracing {
        trace.extend(fx.take());
    }

    blunt_obs::static_counter!("sim.kernel.runs").inc();
    blunt_obs::static_counter!("sim.kernel.steps").add(steps as u64);
    blunt_obs::static_counter!("sim.kernel.random_draws").add(random_draws.len() as u64);
    blunt_obs::static_histogram!("sim.kernel.steps_per_run").record(steps as u64);

    Ok(RunReport {
        outcome: sys.outcome(),
        trace,
        steps,
        random_draws,
    })
}

/// Runs `sys` under a scripted random tape and scheduler, asserting
/// completion — a convenience for replaying known executions in tests.
///
/// # Panics
///
/// Panics if the run errors.
pub fn replay<S, Sch, R>(sys: S, sched: &mut Sch, rng: &mut R, max_steps: usize) -> RunReport
where
    S: System,
    Sch: Scheduler<S>,
    R: RandomSource,
{
    run(sys, sched, rng, true, max_steps).expect("replay failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SplitMix64, Tape};
    use crate::sched::{FirstEnabled, RandomScheduler, ScriptedScheduler};
    use crate::toy::{BranchGame, BranchMove, TwoCoinGame};

    #[test]
    fn first_enabled_takes_risky_branch() {
        // Risky is listed first; with tape [1] the outcome is bad.
        let report = run(
            BranchGame::new(),
            &mut FirstEnabled,
            &mut Tape::new(vec![1]),
            true,
            10,
        )
        .unwrap();
        assert!(BranchGame::is_bad(&report.outcome));
        assert_eq!(report.steps, 1);
        assert_eq!(report.trace.program_random_count(), 1);
    }

    #[test]
    fn scripted_safe_branch_is_never_bad() {
        let mut sched: ScriptedScheduler<BranchMove> =
            ScriptedScheduler::new(vec![Box::new(|evs: &[BranchMove]| {
                evs.iter().position(|e| *e == BranchMove::Safe)
            })]);
        let report = run(
            BranchGame::new(),
            &mut sched,
            &mut Tape::new(vec![]),
            false,
            10,
        )
        .unwrap();
        assert!(!BranchGame::is_bad(&report.outcome));
        assert!(report.random_draws.is_empty());
    }

    #[test]
    fn two_coin_game_draws_two_values() {
        let report = run(
            TwoCoinGame::new(),
            &mut FirstEnabled,
            &mut Tape::new(vec![0, 1]),
            true,
            10,
        )
        .unwrap();
        assert_eq!(report.random_draws, vec![0, 1]);
        assert!(!TwoCoinGame::is_bad(&report.outcome));
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn step_limit_is_enforced() {
        let err = run(
            TwoCoinGame::new(),
            &mut FirstEnabled,
            &mut SplitMix64::new(0),
            false,
            1,
        )
        .unwrap_err();
        assert_eq!(err, RunError::StepLimit { limit: 1 });
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn random_scheduler_runs_are_reproducible_per_seed() {
        let a = run(
            BranchGame::new(),
            &mut RandomScheduler::new(5),
            &mut SplitMix64::new(5),
            false,
            10,
        )
        .unwrap();
        let b = run(
            BranchGame::new(),
            &mut RandomScheduler::new(5),
            &mut SplitMix64::new(5),
            false,
            10,
        )
        .unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.random_draws, b.random_draws);
    }

    #[test]
    fn replay_returns_trace() {
        let report = replay(
            TwoCoinGame::new(),
            &mut FirstEnabled,
            &mut Tape::new(vec![1, 1]),
            10,
        );
        assert!(TwoCoinGame::is_bad(&report.outcome));
        assert_eq!(report.trace.program_random_count(), 2);
    }
}
