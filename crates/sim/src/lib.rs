//! Deterministic simulation substrate for asynchronous concurrent systems
//! under a **strong adversary**.
//!
//! The paper's execution model (Section 2) is an interleaving semantics: an
//! execution is a sequence of atomic steps — message deliveries, base-object
//! accesses, local computation, `random(V)` samples — chosen by an adversary
//! that observes everything, including past random values. This crate makes
//! that model executable:
//!
//! - [`system`] defines the [`system::System`] trait: a concurrent
//!   system is a cloneable, hashable state machine exposing its *enabled*
//!   steps; applying a step may suspend the system at a uniform random choice
//!   (`Status::AwaitingRandom`), which is exactly where probability enters;
//! - [`network`] is the asynchronous message-passing substrate (in-flight
//!   message multiset, crash faults, canonical ordering for state hashing);
//! - [`sched`] contains schedulers, i.e. adversaries: random, fixed-priority,
//!   and fully scripted schedules;
//! - [`rng`] provides deterministic random sources (a splitmix generator and
//!   replayable tapes) for resolving `random(V)` steps outside of exhaustive
//!   exploration;
//! - [`trace`] records executions and renders Figure-1-style timelines;
//! - [`kernel`] runs a system to completion under a scheduler;
//! - [`explore`] computes `Prob[P(O) → B] = max_A Prob[P(O)‖A → B]`
//!   **exactly** by memoized expectimax over the game tree (adversary nodes
//!   maximize, random nodes average uniformly) — the strong adversary of
//!   Section 2.4 is precisely the maximizing player of this game;
//! - [`montecarlo`] estimates outcome probabilities under a fixed scheduler
//!   by repeated deterministic runs;
//! - [`export`] serializes traces and run summaries to the JSONL record
//!   schema of `blunt-obs` (see `docs/OBS_SCHEMA.md`), losslessly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod export;
pub mod kernel;
pub mod montecarlo;
pub mod network;
pub mod rng;
pub mod sched;
pub mod system;
pub mod toy;
pub mod trace;

pub use explore::{
    best_case_prob, reachable_outcomes, sure_win, worst_case_prob, ExploreBudget, ExploreError,
    ExploreStats, Pv, PvStep, PvStepKind, SearchEdge, SearchNode, SearchNodeKind, SearchTrace,
    Solver,
};
pub use export::{event_from_json, event_to_json, record_trace, run_summary_json};
pub use kernel::{run, RunReport};
pub use network::{Envelope, Network};
pub use rng::{RandomSource, SplitMix64, Tape};
pub use sched::{FirstEnabled, RandomScheduler, Scheduler, ScriptedScheduler};
pub use system::{Effects, RandomKind, Status, System};
pub use trace::{Trace, TraceEvent, TraceSummary};
