//! Golden-file round-trip of a recorded [`Trace`] through the JSONL
//! export layer: a deterministic run is serialized, compared byte-for-byte
//! against a checked-in golden file, parsed back, and reassembled into an
//! equal `Trace`.
//!
//! Regenerate the golden file with `BLESS=1 cargo test -p blunt-sim`.

use blunt_obs::{parse_jsonl, JsonlSink, Recorder, VecSink};
use blunt_sim::export::{record_trace, run_summary_json, trace_from_records};
use blunt_sim::kernel::run;
use blunt_sim::rng::Tape;
use blunt_sim::sched::FirstEnabled;
use blunt_sim::toy::TwoCoinGame;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/two_coin.jsonl");

fn recorded_run() -> blunt_sim::kernel::RunReport {
    run(
        TwoCoinGame::new(),
        &mut FirstEnabled,
        &mut Tape::new(vec![1, 0]),
        true,
        100,
    )
    .expect("deterministic toy run completes")
}

fn render(report: &blunt_sim::kernel::RunReport) -> String {
    let mut sink = VecSink::new();
    record_trace(&report.trace, &mut sink);
    sink.record(&run_summary_json("two_coin", report));
    let mut out = String::new();
    for r in &sink.records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn recorded_trace_matches_golden_file_and_round_trips() {
    let report = recorded_run();
    let rendered = render(&report);

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists (BLESS=1 to create)");
    assert_eq!(
        rendered, golden,
        "serialized trace drifted from golden file"
    );

    // Parse the golden text back and reassemble the trace; the run_summary
    // line must be skipped, and every event must survive unchanged.
    let records = parse_jsonl(&golden).expect("golden parses");
    let back = trace_from_records(&records).expect("events deserialize");
    assert_eq!(back, report.trace);

    // The trailing summary record agrees with the trace's own summary.
    let summary = records.last().expect("summary record");
    assert_eq!(
        summary.get("type").and_then(blunt_obs::Json::as_str),
        Some("run_summary")
    );
    assert_eq!(
        summary
            .get("program_randoms")
            .and_then(blunt_obs::Json::as_u64),
        Some(report.trace.summary().program_randoms as u64)
    );
}

#[test]
fn jsonl_sink_file_round_trips_a_recorded_trace() {
    let report = recorded_run();
    let path = std::env::temp_dir().join(format!(
        "blunt_sim_trace_roundtrip_{}.jsonl",
        std::process::id()
    ));
    {
        let mut sink = JsonlSink::create(&path).expect("create sink");
        record_trace(&report.trace, &mut sink);
    } // Drop flushes.
    let text = std::fs::read_to_string(&path).expect("read back");
    let records = parse_jsonl(&text).expect("file parses");
    let back = trace_from_records(&records).expect("events deserialize");
    assert_eq!(back, report.trace);
    let _ = std::fs::remove_file(&path);
}
