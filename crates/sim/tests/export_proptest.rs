//! Property-style round-trip tests for `blunt_sim::export`: randomly
//! generated traces (seeded SplitMix64, so failures replay exactly), empty
//! traces, and maximum-size `Val` payloads all survive serialization to
//! JSONL text and back, not just the golden-file trace.

use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::{parse_jsonl, VecSink};
use blunt_sim::export::{event_from_json, event_to_json, record_trace, trace_from_records};
use blunt_sim::rng::{RandomSource, SplitMix64};
use blunt_sim::trace::{Trace, TraceEvent};

/// A random label exercising JSON string escaping: quotes, backslashes,
/// control characters, unicode.
fn arb_label(g: &mut SplitMix64) -> String {
    const ALPHABET: [&str; 10] = ["q", "#", "\"", "\\", "\n", "\t", "→", "obj", " ", "∀"];
    let len = g.draw(12);
    (0..len).map(|_| ALPHABET[g.draw(ALPHABET.len())]).collect()
}

fn arb_val(g: &mut SplitMix64, depth: usize) -> Val {
    let pick = if depth == 0 { g.draw(2) } else { g.draw(4) };
    match pick {
        0 => Val::Nil,
        1 => Val::Int(match g.draw(5) {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => 0,
            3 => -1,
            _ => g.draw(1_000_000) as i64 - 500_000,
        }),
        2 => Val::pair(arb_val(g, depth - 1), arb_val(g, depth - 1)),
        _ => Val::Tuple((0..g.draw(4)).map(|_| arb_val(g, depth - 1)).collect()),
    }
}

fn arb_pid(g: &mut SplitMix64) -> Pid {
    Pid(g.draw(5) as u32)
}

fn arb_event(g: &mut SplitMix64) -> TraceEvent {
    match g.draw(8) {
        0 => TraceEvent::Call {
            inv: InvId(g.draw(100) as u64),
            pid: arb_pid(g),
            obj: ObjId(g.draw(4) as u32),
            method: if g.draw(2) == 0 {
                MethodId::READ
            } else {
                MethodId::WRITE
            },
            arg: arb_val(g, 2),
            site: CallSite::new(arb_pid(g), g.draw(30) as u16, g.draw(3) as u16),
        },
        1 => TraceEvent::Return {
            inv: InvId(g.draw(100) as u64),
            pid: arb_pid(g),
            val: arb_val(g, 2),
        },
        2 => TraceEvent::Deliver {
            src: arb_pid(g),
            dst: arb_pid(g),
            label: arb_label(g),
        },
        3 => TraceEvent::Internal {
            pid: arb_pid(g),
            label: arb_label(g),
        },
        4 => TraceEvent::PreamblePassed {
            inv: InvId(g.draw(100) as u64),
            pid: arb_pid(g),
            iteration: g.draw(8) as u32 + 1,
        },
        5 => {
            let choices = g.draw(8) + 1;
            TraceEvent::ProgramRandom {
                pid: arb_pid(g),
                choices,
                chosen: g.draw(choices),
            }
        }
        6 => {
            let choices = g.draw(8) + 1;
            TraceEvent::ObjectRandom {
                pid: arb_pid(g),
                inv: InvId(g.draw(100) as u64),
                choices,
                chosen: g.draw(choices),
            }
        }
        _ => TraceEvent::Crash { pid: arb_pid(g) },
    }
}

fn arb_trace(g: &mut SplitMix64, max_len: usize) -> Trace {
    let mut t = Trace::new();
    t.extend((0..g.draw(max_len + 1)).map(|_| arb_event(g)).collect());
    t
}

/// Serializes `t` to JSONL text and parses it back into a `Trace`.
fn round_trip(t: &Trace) -> Trace {
    let mut sink = VecSink::new();
    record_trace(t, &mut sink);
    let mut text = String::new();
    for r in &sink.records {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    let records = parse_jsonl(&text).expect("serialized trace parses");
    trace_from_records(&records).expect("events deserialize")
}

#[test]
fn random_traces_round_trip() {
    for seed in 0..200u64 {
        let mut g = SplitMix64::new(seed);
        let t = arb_trace(&mut g, 40);
        assert_eq!(round_trip(&t), t, "seed {seed}");
    }
}

#[test]
fn empty_trace_round_trips() {
    let t = Trace::new();
    assert_eq!(round_trip(&t), t);
    // No records at all — trace_from_records on the empty stream.
    assert_eq!(trace_from_records(&[]).unwrap(), Trace::new());
}

#[test]
fn max_size_val_payloads_round_trip() {
    // A deep pair chain, a wide tuple, and the i64 extremes — the largest
    // values the `Val` grammar can express at each axis.
    let mut deep = Val::Int(i64::MIN);
    for _ in 0..64 {
        deep = Val::pair(deep, Val::Int(i64::MAX));
    }
    let wide = Val::Tuple((0..256).map(|i| Val::Int(i - 128)).collect());
    let nested_wide = Val::Tuple(vec![deep.clone(), wide.clone(), Val::Nil]);
    for val in [deep, wide, nested_wide] {
        let mut t = Trace::new();
        t.extend(vec![
            TraceEvent::Call {
                inv: InvId(u64::MAX),
                pid: Pid(u32::MAX),
                obj: ObjId(u32::MAX),
                method: MethodId(u16::MAX),
                arg: val.clone(),
                site: CallSite::new(Pid(u32::MAX), u16::MAX, u16::MAX),
            },
            TraceEvent::Return {
                inv: InvId(u64::MAX),
                pid: Pid(u32::MAX),
                val,
            },
        ]);
        assert_eq!(round_trip(&t), t);
    }
}

#[test]
fn individual_event_json_is_stable_under_double_round_trip() {
    // to_json ∘ from_json ∘ to_json is the identity on serialized form:
    // pins that parsing does not normalize away information.
    let mut g = SplitMix64::new(0xb1e55ed);
    for _ in 0..500 {
        let ev = arb_event(&mut g);
        let once = event_to_json(&ev).to_string();
        let back = event_from_json(&blunt_obs::Json::parse(&once).unwrap()).unwrap();
        let twice = event_to_json(&back).to_string();
        assert_eq!(once, twice);
        assert_eq!(back, ev);
    }
}
