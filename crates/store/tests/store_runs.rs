//! Acceptance runs for the sharded keyed store.
//!
//! - keyed smoke under light faults: zero linearizability violations from
//!   the per-shard monitors, with the fault mix actually firing;
//! - same seed ⇒ identical transport stats and coverage, different seed ⇒
//!   a genuinely different schedule;
//! - batching is transport amortization only: any `batch_max` yields the
//!   exact same fault schedule (stats AND coverage) as unbatched sends;
//! - pipelining preserves per-key order: deep pipelines stay clean;
//! - the intentionally-broken single-server read is caught by the
//!   per-shard monitor on the keyed store, with a rendered window;
//! - the same client loop over real sockets (UDS loopback) stays clean.

use std::thread;

use blunt_net::Addr;
use blunt_runtime::{run_net_server, NetServeConfig, RecoveryMode};
use blunt_store::{run_store, run_store_net, StoreConfig};

#[test]
fn keyed_smoke_under_light_faults_zero_violations() {
    let report = run_store(&StoreConfig::smoke(0x5709_0001)).expect("valid fault config");
    assert_eq!(report.ops, 2_000);
    assert!(
        report.monitor.clean(),
        "keyed violations: {:?}",
        report
            .monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    // The fault mix actually fired across the sharded topology.
    assert!(report.stats.dropped > 0, "{:?}", report.stats);
    // Every op produced one Call and one Return into some shard monitor.
    assert_eq!(report.monitor_actions, 2 * report.ops);
    assert_eq!(report.latency_us.count, report.ops);
    assert!(report.monitor.segments_ok > 0);
    assert!(report.ops_per_sec() > 0.0);
}

#[test]
fn same_seed_reproduces_the_schedule_different_seed_does_not() {
    let run = |seed| run_store(&StoreConfig::smoke(seed)).expect("valid fault config");
    let a = run(0x5709_5EED);
    let b = run(0x5709_5EED);
    // Fault fates live in per-link index space and client sends hit each
    // link in program order, so the whole schedule is a pure function of
    // the seed — retransmissions are exempt and can't perturb it.
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.coverage, b.coverage);
    assert!(a.monitor.clean() && b.monitor.clean());
    let c = run(0x5709_5EEE);
    assert_ne!(a.stats, c.stats);
}

#[test]
fn batching_never_perturbs_the_fault_schedule() {
    let run = |batch_max| {
        let mut cfg = StoreConfig::smoke(0x5709_BA7C);
        cfg.batch_max = batch_max;
        run_store(&cfg).expect("valid fault config")
    };
    let unbatched = run(1);
    let batched = run(16);
    // A batch IS its envelope sequence: fates are drawn per logical
    // envelope in send order, so stats and coverage are identical at any
    // batch size — batching changes framing, never the schedule.
    assert_eq!(unbatched.stats, batched.stats);
    assert_eq!(unbatched.coverage, batched.coverage);
    assert!(unbatched.monitor.clean() && batched.monitor.clean());
}

#[test]
fn deep_pipelines_preserve_per_key_order() {
    let run = |depth| {
        let mut cfg = StoreConfig::smoke(0x5709_D0D0);
        cfg.pipeline_depth = depth;
        run_store(&cfg).expect("valid fault config")
    };
    // Depth 1 is the sequential client; depth 8 keeps a full burst in
    // flight. Both must linearize: the pipeline never overlaps two ops on
    // the same key from one client, and cross-key overlap is exactly what
    // linearizability permits.
    for report in [run(1), run(8)] {
        assert!(
            report.monitor.clean(),
            "pipelined violations: {:?}",
            report
                .monitor
                .violations
                .iter()
                .map(|v| &v.rendered)
                .collect::<Vec<_>>()
        );
        assert_eq!(report.ops, 2_000);
    }
}

#[test]
fn broken_reads_on_the_keyed_store_are_caught() {
    let mut cfg = StoreConfig::smoke(0x5709_0BAD);
    cfg.broken_reads = true;
    // Concentrate the keyspace and go write-heavy: replicas that miss a
    // dropped update stay stale, and the rotating single-server fast read
    // exposes them to the shard's monitor.
    cfg.keys = 8;
    cfg.read_per_mille = 400;
    let report = run_store(&cfg).expect("valid fault config");
    assert!(
        !report.monitor.violations.is_empty(),
        "the unsafe fast read went unnoticed on the keyed store"
    );
    let v = &report.monitor.violations[0];
    assert!(
        v.rendered.contains('┌') && v.rendered.contains('└'),
        "window rendering must show operation intervals:\n{}",
        v.rendered
    );
    assert!(
        report.violation_dump.is_some(),
        "the first violation must capture a flight dump"
    );
}

#[test]
fn amnesia_recovery_on_the_keyed_store_is_clean_and_seed_deterministic() {
    let run = || {
        let mut cfg = StoreConfig::smoke(0x5709_A23E);
        cfg.recovery = RecoveryMode::amnesia();
        // Crash windows scaled to the sharded topology, mirroring the
        // chaos CLI's amnesia profile: a handful of servers down at any
        // instant rather than a whole shard's quorum.
        cfg.faults.crash_len = 4;
        cfg.faults.crash_period = 20 * u64::from(cfg.servers_total());
        run_store(&cfg).expect("valid fault config")
    };
    let a = run();
    assert!(
        a.monitor.clean(),
        "amnesia violations: {:?}",
        a.monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    assert_eq!(a.ops, 2_000);
    // Crashes actually fired, and the sound recovery path answered every
    // one of them: replay the WAL, then catch up from a live quorum.
    assert!(a.recovery.crashes >= 1, "{:?}", a.recovery);
    assert_eq!(a.recovery.crashes, a.recovery.recoveries);
    assert_eq!(
        a.shard_recoveries.iter().map(|&(c, _)| c).sum::<u64>(),
        a.recovery.crashes
    );
    for &(crashes, recoveries) in &a.shard_recoveries {
        assert_eq!(crashes, recoveries);
    }
    // Crash windows live in per-link index space, so which shard crashes
    // when — and therefore how often — is a pure function of the seed,
    // even though ack/reply timing under pipelining is not.
    let b = run();
    assert_eq!(a.recovery.crashes, b.recovery.crashes);
    assert_eq!(a.shard_recoveries, b.shard_recoveries);
    assert_eq!(a.ops, b.ops);
    assert!(b.monitor.clean());
}

#[test]
fn a_shard_recovery_that_forgets_is_caught_by_that_shards_monitor() {
    // One shard's recovery skips WAL replay and quorum catch-up
    // (demo_shard); its per-shard monitor must be the one that fires.
    // The lie only surfaces when a crash lands between an acked write
    // and a later read served from the forgetful quorum, so scan a few
    // seeds like the CLI demo does.
    let mut caught = false;
    for attempt in 0..8u64 {
        let mut cfg = StoreConfig::smoke(0x5709_F09E + attempt);
        cfg.shards = 2;
        cfg.clients = 2;
        cfg.ops_per_client = 2_000;
        cfg.keys = 4;
        cfg.read_per_mille = 400;
        cfg.recovery = RecoveryMode::amnesia();
        cfg.demo_shard = Some(0);
        cfg.faults = blunt_net::FaultConfig::chaos();
        cfg.faults.drop_per_mille = 200;
        cfg.faults.delay_per_mille = 100;
        cfg.faults.crash_len = 2;
        cfg.faults.crash_period = 3 * u64::from(cfg.servers_total());
        let report = run_store(&cfg).expect("valid fault config");
        assert!(
            report.recovery.crashes >= 1,
            "demo config is inert: no crash windows fired"
        );
        if !report.monitor.violations.is_empty() {
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "a recovery that skips WAL replay and catch-up went unnoticed"
    );
}

#[test]
fn keyed_store_over_uds_sockets_zero_violations() {
    let mut cfg = StoreConfig::smoke(0x5709_4E75);
    cfg.shards = 2;
    cfg.clients = 2;
    cfg.ops_per_client = 250;
    cfg.keys = 16;
    let total = cfg.servers_total();
    let dir = std::env::temp_dir().join(format!("blunt-store-net-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let addrs: Vec<Addr> = (0..total)
        .map(|i| Addr::parse(dir.join(format!("s{i}.sock")).to_str().expect("utf-8 path")))
        .collect();
    let servers: Vec<_> = (0..total)
        .map(|i| {
            let scfg = NetServeConfig {
                listen: addrs[i as usize].clone(),
                server_id: i,
                servers: total,
                clients: cfg.clients,
                peers: addrs.clone(),
                seed: cfg.seed,
                faults: cfg.faults,
                recovery: RecoveryMode::Stable,
                shard_size: None,
                dump_dir: None,
            };
            thread::spawn(move || run_net_server(&scfg).expect("server run"))
        })
        .collect();

    let report = run_store_net(&cfg, &addrs).expect("valid fault config");
    for s in servers {
        s.join().expect("server thread");
    }
    assert_eq!(report.ops, 500);
    assert!(
        report.monitor.clean(),
        "violations over sockets: {:?}",
        report
            .monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    // Socket frames actually moved, and batches actually formed.
    assert!(blunt_obs::counter("net.frames_sent").get() > 0);
    assert!(blunt_obs::counter("store.batch.flushes").get() > 0);
}
