//! Flush-scoped envelope batching over any [`Transport`].
//!
//! A [`BatchingTransport`] sits between one pipelined client and the shared
//! transport. Protocol sends accumulate in a buffer — in send order — and
//! are handed to the inner transport as one [`Transport::send_batch`] call
//! when the buffer reaches `batch_max`, when the client is about to block
//! on its mailbox (nothing more is coming until replies arrive), or at an
//! explicit flush. Over the socket tier the inner `send_batch` packs each
//! destination's surviving envelopes into a single `EnvBatch` frame,
//! amortizing framing and syscalls across a quorum round's fan-out; over
//! the in-process bus it degenerates to the plain send loop.
//!
//! **Batching is transport amortization only.** `send_batch`'s contract
//! (see [`Transport`]) draws fault fates per logical envelope in buffer
//! order — exactly the fates the unbatched sends would have drawn — so the
//! seed-determined schedule, stats, and coverage are identical at any
//! `batch_max`, and `batch_max = 1` is *operationally* identical to no
//! wrapper at all (each send flushes immediately as a batch of one).

use std::sync::Mutex;

use blunt_core::ids::Pid;
use blunt_net::{Coverage, Envelope, Transport, TransportStats};

/// A per-client batching layer over a shared [`Transport`].
pub struct BatchingTransport<'a> {
    inner: &'a dyn Transport,
    batch_max: usize,
    buf: Mutex<Vec<Envelope>>,
}

impl<'a> BatchingTransport<'a> {
    /// Wraps `inner`, flushing whenever `batch_max` envelopes accumulate
    /// (`batch_max = 1` ⇒ pass-through).
    ///
    /// # Panics
    ///
    /// Panics if `batch_max == 0`.
    #[must_use]
    pub fn new(inner: &'a dyn Transport, batch_max: usize) -> BatchingTransport<'a> {
        assert!(batch_max >= 1, "a batch holds at least one envelope");
        BatchingTransport {
            inner,
            batch_max,
            buf: Mutex::new(Vec::with_capacity(batch_max)),
        }
    }

    /// Hands any buffered envelopes to the inner transport as one batch.
    /// Call before blocking on the mailbox: the replies being waited on
    /// cannot arrive until the requests actually leave.
    pub fn flush_pending(&self) {
        let batch = {
            let mut buf = self.buf.lock().expect("batch buffer lock");
            if buf.is_empty() {
                return;
            }
            std::mem::take(&mut *buf)
        };
        blunt_obs::static_counter!("store.batch.flushes").inc();
        blunt_obs::static_counter!("store.batch.envelopes").add(batch.len() as u64);
        blunt_obs::histogram("store.batch.envelopes_per_flush").record(batch.len() as u64);
        self.inner.send_batch(batch);
    }

    fn push(&self, env: Envelope) {
        let full = {
            let mut buf = self.buf.lock().expect("batch buffer lock");
            buf.push(env);
            buf.len() >= self.batch_max
        };
        if full {
            self.flush_pending();
        }
    }
}

impl Transport for BatchingTransport<'_> {
    fn send(&self, env: Envelope) {
        self.push(env);
    }

    fn send_batch(&self, envs: Vec<Envelope>) {
        for env in envs {
            self.push(env);
        }
    }

    fn on_op_start(&self, client: Pid) {
        // The inner transport may retire outstanding reply routes here —
        // anything still buffered must be on the wire (and its routes
        // registered) before that happens.
        self.flush_pending();
        self.inner.on_op_start(client);
    }

    fn flush(&self) {
        self.flush_pending();
        self.inner.flush();
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn coverage(&self) -> Coverage {
        self.inner.coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A transport that records the shape of every call it receives.
    #[derive(Default)]
    struct Probe {
        batches: Mutex<Vec<usize>>,
        op_starts: AtomicUsize,
        flushes: AtomicUsize,
    }

    impl Transport for Probe {
        fn send(&self, _env: Envelope) {
            // The default send_batch would forward here; recording batch
            // sizes in send_batch is what the tests assert on.
            self.batches.lock().unwrap().push(1);
        }

        fn send_batch(&self, envs: Vec<Envelope>) {
            self.batches.lock().unwrap().push(envs.len());
        }

        fn on_op_start(&self, _client: Pid) {
            self.op_starts.fetch_add(1, Ordering::Relaxed);
        }

        fn flush(&self) {
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }

        fn stats(&self) -> TransportStats {
            TransportStats::default()
        }

        fn coverage(&self) -> Coverage {
            Coverage::default()
        }
    }

    fn env(n: u32) -> Envelope {
        use blunt_abd::msg::AbdMsg;
        use blunt_core::ids::ObjId;
        Envelope::abd(
            Pid(9),
            Pid(0),
            AbdMsg::Query {
                obj: ObjId(0),
                sn: n,
            },
            false,
        )
    }

    #[test]
    fn sends_accumulate_until_batch_max_then_flush_in_order() {
        let probe = Probe::default();
        let bt = BatchingTransport::new(&probe, 3);
        for i in 0..7 {
            bt.send(env(i));
        }
        assert_eq!(
            *probe.batches.lock().unwrap(),
            vec![3, 3],
            "two full batches"
        );
        bt.flush_pending();
        assert_eq!(
            *probe.batches.lock().unwrap(),
            vec![3, 3, 1],
            "the remainder leaves on the explicit flush"
        );
        bt.flush_pending();
        assert_eq!(
            *probe.batches.lock().unwrap(),
            vec![3, 3, 1],
            "an empty flush is a no-op"
        );
    }

    #[test]
    fn batch_max_one_forwards_every_send_immediately() {
        let probe = Probe::default();
        let bt = BatchingTransport::new(&probe, 1);
        for i in 0..4 {
            bt.send(env(i));
        }
        assert_eq!(*probe.batches.lock().unwrap(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn op_start_and_flush_drain_the_buffer_first() {
        let probe = Probe::default();
        let bt = BatchingTransport::new(&probe, 100);
        bt.send(env(0));
        bt.send(env(1));
        bt.on_op_start(Pid(9));
        assert_eq!(*probe.batches.lock().unwrap(), vec![2]);
        assert_eq!(probe.op_starts.load(Ordering::Relaxed), 1);
        bt.send(env(2));
        bt.flush();
        assert_eq!(*probe.batches.lock().unwrap(), vec![2, 1]);
        assert_eq!(probe.flushes.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "at least one envelope")]
    fn zero_batch_max_is_a_programmer_error() {
        let probe = Probe::default();
        let _ = BatchingTransport::new(&probe, 0);
    }
}
