//! The consistent-hash ring: a seed-deterministic key → shard map.
//!
//! Each shard owns [`VNODES`] pseudo-random points on a `u64` circle; a key
//! hashes to a point and belongs to the shard owning the next point
//! clockwise. Both the vnode points and the key hash are pure functions of
//! `(seed, input)` via splitmix64 finalization, so two rings built from the
//! same `(seed, shards)` agree on every key — across processes, platforms,
//! and runs — and a different seed permutes the keyspace.
//!
//! Consistent hashing gives the property the store's growth story needs:
//! going from `n` to `n + 1` shards only *adds* points, so a key either
//! keeps its shard or moves to the new one — no key ever moves between two
//! old shards (verified by test across shard counts 1..16).

use blunt_core::ids::ObjId;

/// Virtual nodes per shard. 64 keeps the per-shard keyspace share within
/// a few tens of percent of uniform (bounded by test) while the ring stays
/// small enough that building it is negligible next to one quorum round.
pub const VNODES: u32 = 64;

/// The splitmix64 finalizer as a pure hash: decorrelates consecutive
/// inputs and mixes the seed into every bit.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed
        .wrapping_add(x)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-deterministic consistent-hash ring over `shards` shards.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point (ties broken by shard id, so
    /// even a colliding pair of points resolves deterministically).
    points: Vec<(u64, u32)>,
    seed: u64,
    shards: u32,
}

impl HashRing {
    /// Builds the ring for `shards` shards. Same `(seed, shards)` ⇒ the
    /// same ring, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(seed: u64, shards: u32) -> HashRing {
        assert!(shards >= 1, "a ring needs at least one shard");
        let mut points = Vec::with_capacity((shards * VNODES) as usize);
        for s in 0..shards {
            for v in 0..VNODES {
                // Vnode points draw from a different splitmix stream than
                // key hashes (distinct salt), so keys never land exactly on
                // ownership boundaries systematically.
                let p = mix(
                    seed ^ 0x5A1D_0000_0000_0000,
                    (u64::from(s) << 32) | u64::from(v),
                );
                points.push((p, s));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            seed,
            shards,
        }
    }

    /// Number of shards this ring maps onto.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `key`: the first vnode point clockwise of the key's
    /// hash (wrapping past the top of the circle).
    #[must_use]
    pub fn shard_for(&self, key: ObjId) -> u32 {
        let h = mix(self.seed ^ 0x0B1D_4B47_0000_0000, u64::from(key.0));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Growing the ring from `n` to `n + 1` shards must only move keys TO
    /// the new shard — a key never migrates between two pre-existing
    /// shards. This is the defining consistent-hashing property; checked
    /// across every adjacent pair in 1..=16.
    #[test]
    fn growth_only_moves_keys_to_the_new_shard() {
        const KEYS: u32 = 4_096;
        let seed = 0xBEEF;
        let rings: Vec<HashRing> = (1..=16).map(|n| HashRing::new(seed, n)).collect();
        for w in rings.windows(2) {
            let (old, new) = (&w[0], &w[1]);
            let added = new.shards() - 1;
            let mut moved = 0u32;
            for k in 0..KEYS {
                let before = old.shard_for(ObjId(k));
                let after = new.shard_for(ObjId(k));
                if before != after {
                    assert_eq!(
                        after, added,
                        "key {k} moved {before}→{after} when shard {added} was added"
                    );
                    moved += 1;
                }
            }
            // The new shard takes roughly a 1/(n+1) share; it must take
            // *something* (an inert shard would mean broken vnodes).
            assert!(moved > 0, "shard {added} captured no keys");
        }
    }

    /// Every shard's share of the keyspace stays within a factor of two of
    /// uniform — the bound VNODES = 64 is sized for.
    #[test]
    fn key_distribution_is_roughly_uniform() {
        const KEYS: u32 = 32_768;
        for shards in [2u32, 4, 8, 16] {
            let ring = HashRing::new(0xD15C0, shards);
            let mut counts = vec![0u32; shards as usize];
            for k in 0..KEYS {
                counts[ring.shard_for(ObjId(k)) as usize] += 1;
            }
            let fair = KEYS / shards;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c >= fair / 2 && c <= fair * 2,
                    "shard {s}/{shards} holds {c} keys (fair share {fair})"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_ring_different_seed_different_ring() {
        let a = HashRing::new(42, 8);
        let b = HashRing::new(42, 8);
        let c = HashRing::new(43, 8);
        let map = |r: &HashRing| -> Vec<u32> { (0..1000).map(|k| r.shard_for(ObjId(k))).collect() };
        assert_eq!(map(&a), map(&b), "same (seed, shards) ⇒ same mapping");
        assert_ne!(map(&a), map(&c), "a different seed permutes the keyspace");
    }

    #[test]
    fn single_shard_ring_maps_everything_to_shard_zero() {
        let ring = HashRing::new(7, 1);
        assert!((0..512).all(|k| ring.shard_for(ObjId(k)) == 0));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_a_programmer_error() {
        let _ = HashRing::new(0, 0);
    }
}
