//! The store driver: sharded servers, per-shard monitors, pipelined
//! batched clients — over the in-process bus or the socket tier.
//!
//! [`run_store`] is the single-process entry: it builds one
//! [`blunt_runtime::Bus`] spanning every shard's servers plus the clients,
//! spawns the unmodified [`server_loop`] per replica, and drives the keyed
//! workload. [`run_store_net`] is the same client side pointed at already-
//! listening `chaos serve` processes through a [`NetClient`]. Both share
//! the same client loop, so the two tiers exercise identical protocol
//! logic and differ only in transport.
//!
//! Determinism contract: the per-client rng stream is a pure function of
//! `(seed, client)` and is consumed in *program order* (key draw, then
//! read/write draw, per op at burst setup) — never in reply-arrival order —
//! so the draw sequence is schedule-independent. Pipelining changes only
//! *when* messages leave relative to each other, and batching changes only
//! how they are framed; fault fates are drawn per logical envelope in send
//! order either way (see [`crate::batch`]).

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use blunt_abd::client::{AckEffect, ActiveOp, OpKind, ReplyEffect};
use blunt_abd::msg::AbdMsg;
use blunt_core::history::Action;
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_net::{
    Addr, Coverage, Envelope, FaultConfig, FaultConfigError, NetClient, NetClientCfg, Payload,
    SpanCtx, Transport, TransportStats,
};
use blunt_obs::flight::encode_val;
use blunt_obs::{FlightDump, FlightKind, FlightRecorder, FlightRing, Histogram, HistogramSnapshot};
use blunt_runtime::{
    server_loop, Bus, MonitorReport, OnlineMonitor, RecoveryMode, RecoverySink, RecoveryStats,
};
use blunt_sim::rng::{RandomSource, SplitMix64};

use crate::batch::BatchingTransport;
use crate::ring::HashRing;

/// One store run: topology, workload shape, and chaos knobs.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Independent ABD shards the keyspace maps onto.
    pub shards: u32,
    /// Replicas per shard; each shard's quorum is a majority of these.
    pub servers_per_shard: u32,
    /// Client threads.
    pub clients: u32,
    /// Operations each client completes.
    pub ops_per_client: u64,
    /// Distinct keys (registers) the workload draws from.
    pub keys: u32,
    /// Max operations one client keeps in flight at once.
    pub pipeline_depth: u32,
    /// Envelopes buffered per client before a forced flush
    /// (`1` ⇒ batching off; see [`BatchingTransport`]).
    pub batch_max: usize,
    /// Ops per burst between client barriers (bounds the monitor window:
    /// `clients × burst ≤ 64`).
    pub burst: u64,
    /// Read fraction in per-mille (500 = half reads).
    pub read_per_mille: u16,
    /// The run seed — fixes the fault schedule, the key sequence, and the
    /// ring layout.
    pub seed: u64,
    /// Fault injection profile for the transport.
    pub faults: FaultConfig,
    /// Replace quorum reads with the intentionally-broken single-server
    /// read (no write-back) — the monitor must catch it.
    pub broken_reads: bool,
    /// First retransmission timeout.
    pub retransmit_after: Duration,
    /// Backoff ceiling for retransmission timeouts.
    pub retransmit_cap: Duration,
    /// What a crash means for shard replicas: [`RecoveryMode::Stable`]
    /// keeps crashes as pure message blackouts; an amnesia mode arms the
    /// bus's crash signal and every replica runs the WAL-replay +
    /// peer-catch-up recovery protocol within its own shard's group.
    pub recovery: RecoveryMode,
    /// Intentionally break ONE shard's recovery
    /// ([`RecoveryMode::demo_amnesia`]: no replay, no catch-up) while the
    /// others recover soundly — that shard's monitor must catch the stale
    /// keyed reads. Requires an amnesia [`StoreConfig::recovery`].
    pub demo_shard: Option<u32>,
}

impl StoreConfig {
    /// A small faulted smoke configuration: 4 shards × 3 replicas, 4
    /// pipelined clients, light faults. CI-sized.
    #[must_use]
    pub fn smoke(seed: u64) -> StoreConfig {
        StoreConfig {
            shards: 4,
            servers_per_shard: 3,
            clients: 4,
            ops_per_client: 500,
            keys: 64,
            pipeline_depth: 4,
            batch_max: 8,
            burst: 8,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::light(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
            retransmit_cap: Duration::from_millis(16),
            recovery: RecoveryMode::Stable,
            demo_shard: None,
        }
    }

    /// The throughput configuration: 8 shards × 3 replicas, 8 clients ×
    /// 125k ops = 1M operations, fault-free, deep pipeline, fat batches.
    #[must_use]
    pub fn bench(seed: u64) -> StoreConfig {
        StoreConfig {
            shards: 8,
            servers_per_shard: 3,
            clients: 8,
            ops_per_client: 125_000,
            keys: 1024,
            pipeline_depth: 8,
            batch_max: 16,
            burst: 8,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::none(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
            retransmit_cap: Duration::from_millis(16),
            recovery: RecoveryMode::Stable,
            demo_shard: None,
        }
    }

    /// Total server processes: `shards × servers_per_shard`.
    #[must_use]
    pub fn servers_total(&self) -> u32 {
        self.shards * self.servers_per_shard
    }

    fn validate(&self) {
        assert!(self.shards >= 1, "the store needs at least one shard");
        assert!(self.servers_per_shard >= 1, "a shard needs a replica");
        assert!(
            self.servers_total() <= 64,
            "server pids must fit the 64-bit responder masks"
        );
        assert!(self.clients >= 1 && self.ops_per_client >= 1);
        assert!(self.keys >= 1, "the store needs at least one key");
        assert!(
            self.pipeline_depth >= 1,
            "pipeline depth 0 makes no progress"
        );
        assert!(self.burst >= 1);
        assert!(
            u64::from(self.pipeline_depth) <= self.burst,
            "in-flight ops beyond the burst size can never materialize"
        );
        assert!(
            u64::from(self.clients) * self.burst <= 64,
            "clients × burst must fit the monitor's 64-invocation window"
        );
        assert!(self.batch_max >= 1, "a batch holds at least one envelope");
        if let Some(d) = self.demo_shard {
            assert!(d < self.shards, "demo shard must be one of 0..shards");
            assert!(
                self.recovery.is_amnesia(),
                "a demo shard needs amnesia recovery — stable crashes never \
                 erase state, so skipping recovery would be inert"
            );
        }
    }
}

/// What one store run produced.
#[derive(Clone, Debug)]
pub struct StoreReport {
    /// Operations completed (`clients × ops_per_client`).
    pub ops: u64,
    /// Transport-level message statistics.
    pub stats: TransportStats,
    /// Fault-schedule coverage actually exercised.
    pub coverage: Coverage,
    /// The merged verdict across all per-shard monitors.
    pub monitor: MonitorReport,
    /// Call/return actions consumed across all shard monitors.
    pub monitor_actions: u64,
    /// Flight dump captured at the first violation anywhere, if any.
    pub violation_dump: Option<FlightDump>,
    /// Client retransmissions (timeout recoveries).
    pub retransmissions: u64,
    /// Operations whose pipeline start was deferred because their shard
    /// was degraded (recovering) with its in-flight cap reached.
    /// Timing-dependent; excluded from regression gating.
    pub degraded_ops: u64,
    /// Aggregate crash-recovery counters across every shard replica
    /// (`crashes`/`recoveries` deterministic for a seed; the WAL-shaped
    /// ones timing-dependent). All zero under stable recovery.
    pub recovery: RecoveryStats,
    /// Per-shard `(crashes, recoveries)`, index = shard. Deterministic for
    /// a seed: crash windows live in link-index space and every crash runs
    /// exactly one recovery. Empty when the tier cannot attribute them
    /// (never — both tiers fill it; see `run_store` / `run_store_net`).
    pub shard_recoveries: Vec<(u64, u64)>,
    /// End-to-end per-op latency distribution (µs).
    pub latency_us: HistogramSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl StoreReport {
    /// Completed operations per wall-clock second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs one seeded store configuration on the in-process bus.
///
/// # Errors
///
/// Returns [`FaultConfigError`] if the fault probabilities are malformed.
///
/// # Panics
///
/// Panics on an invalid topology (see [`StoreConfig`] field docs) or if a
/// worker thread dies.
pub fn run_store(cfg: &StoreConfig) -> Result<StoreReport, FaultConfigError> {
    cfg.validate();
    let started = Instant::now();
    let servers_total = cfg.servers_total();
    let nodes = servers_total + cfg.clients;
    let recorder = Arc::new(FlightRecorder::new(4096));
    let (bus, receivers) = Bus::new(
        cfg.seed,
        cfg.faults,
        servers_total,
        nodes,
        cfg.recovery.is_amnesia(),
        Arc::clone(&recorder),
    )?;
    let bus = Arc::new(bus);
    let stop = Arc::new(AtomicBool::new(false));
    // One sink per shard: crash/recovery counters stay attributable to the
    // shard whose replicas produced them.
    let sinks: Vec<Arc<RecoverySink>> = (0..cfg.shards)
        .map(|_| Arc::new(RecoverySink::default()))
        .collect();

    let mut rx_iter = receivers.into_iter();
    let mut servers = Vec::new();
    for s in 0..servers_total {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let stop = Arc::clone(&stop);
        let recorder = Arc::clone(&recorder);
        // The server loop is key-agnostic (its store is a per-key map), so
        // shard membership is purely a property of who clients address:
        // replica s serves shard s / servers_per_shard. Recovery catch-up
        // stays within the shard — only these replicas hold the keys.
        let shard = s / cfg.servers_per_shard;
        let sink = Arc::clone(&sinks[shard as usize]);
        let group: Vec<Pid> = (shard * cfg.servers_per_shard..(shard + 1) * cfg.servers_per_shard)
            .map(Pid)
            .collect();
        let mode = match cfg.demo_shard {
            Some(d) if d == shard => RecoveryMode::demo_amnesia(),
            _ => cfg.recovery,
        };
        servers.push(thread::spawn(move || {
            server_loop(
                Pid(s),
                group,
                mode,
                rx,
                bus.as_ref(),
                &stop,
                &sink,
                &recorder,
            );
        }));
    }
    let client_rxs: Vec<Receiver<Envelope>> = rx_iter.collect();

    let transport: Arc<dyn Transport> = Arc::clone(&bus) as Arc<dyn Transport>;
    let core = drive_clients(cfg, transport, client_rxs, Arc::clone(&recorder));

    // Every amnesia signal is enqueued synchronously inside a client's
    // send, so by this point (clients joined inside `drive_clients`) all
    // crash events are in server mailboxes; servers drain them before
    // honoring `stop`, keeping the recovery counters deterministic.
    stop.store(true, Ordering::Relaxed);
    for s in servers {
        s.join().expect("server thread");
    }
    bus.flush();
    let shard_recoveries: Vec<(u64, u64)> = sinks
        .iter()
        .map(|s| {
            let r = s.snapshot();
            (r.crashes, r.recoveries)
        })
        .collect();
    let recovery = sum_recovery(sinks.iter().map(|s| s.snapshot()));
    Ok(core.into_report(
        bus.stats(),
        bus.coverage(),
        recovery,
        shard_recoveries,
        started.elapsed(),
    ))
}

/// Folds per-shard recovery snapshots into one run-wide total, mirroring
/// it into the `store.recovery.*` counters.
fn sum_recovery(parts: impl Iterator<Item = RecoveryStats>) -> RecoveryStats {
    let mut total = RecoveryStats::default();
    for r in parts {
        total.crashes += r.crashes;
        total.recoveries += r.recoveries;
        total.wal_records_lost += r.wal_records_lost;
        total.wal_records_replayed += r.wal_records_replayed;
        total.state_queries += r.state_queries;
        total.catchup_aborted += r.catchup_aborted;
    }
    blunt_obs::static_counter!("store.recovery.crashes").add(total.crashes);
    blunt_obs::static_counter!("store.recovery.recoveries").add(total.recoveries);
    total
}

/// Runs the store's client side against already-listening `chaos serve`
/// processes: `addrs` lists every replica, shard-major (`addrs[s·R..(s+1)·R]`
/// is shard `s`'s replica set, matching pid order).
///
/// # Errors
///
/// Returns [`FaultConfigError`] if the fault probabilities are malformed.
///
/// # Panics
///
/// Panics if `addrs` doesn't match the topology, on connection failure, or
/// if a worker thread dies.
pub fn run_store_net(cfg: &StoreConfig, addrs: &[Addr]) -> Result<StoreReport, FaultConfigError> {
    cfg.validate();
    assert_eq!(
        addrs.len(),
        cfg.servers_total() as usize,
        "one address per shard replica, shard-major"
    );
    let started = Instant::now();
    let recorder = Arc::new(FlightRecorder::new(4096));
    let (net, client_rxs) = NetClient::connect(
        &NetClientCfg {
            seed: cfg.seed,
            faults: cfg.faults,
            servers: addrs.to_vec(),
            clients: cfg.clients,
            // The driver owns every client→server link, so crash-window
            // exits are signaled from here as exempt frames ahead of the
            // triggering frame — exactly as the in-process bus enqueues
            // them.
            signal_crashes: cfg.recovery.is_amnesia(),
        },
        Arc::clone(&recorder),
    )?;

    let transport: Arc<dyn Transport> = Arc::clone(&net) as Arc<dyn Transport>;
    let core = drive_clients(cfg, transport, client_rxs, Arc::clone(&recorder));

    let stats = net.stats();
    let coverage = net.coverage();
    // Recoveries happen in the serve processes; their `Goodbye` frames
    // carry the counters home. Pids are shard-major, so goodbye index /
    // replicas-per-shard is the shard.
    let goodbyes = net.shutdown(Duration::from_secs(10));
    let mut shard_recoveries = vec![(0u64, 0u64); cfg.shards as usize];
    let mut recovery = RecoveryStats::default();
    for (pid, g) in goodbyes.iter().enumerate() {
        if let Some(g) = g {
            let shard = pid / cfg.servers_per_shard as usize;
            shard_recoveries[shard].0 += g.crashes;
            shard_recoveries[shard].1 += g.recoveries;
            recovery.crashes += g.crashes;
            recovery.recoveries += g.recoveries;
            recovery.wal_records_lost += g.wal_lost;
            recovery.wal_records_replayed += g.wal_replayed;
        }
    }
    blunt_obs::static_counter!("store.recovery.crashes").add(recovery.crashes);
    blunt_obs::static_counter!("store.recovery.recoveries").add(recovery.recoveries);
    Ok(core.into_report(
        stats,
        coverage,
        recovery,
        shard_recoveries,
        started.elapsed(),
    ))
}

/// Everything the client side of a run produces, transport-agnostic.
struct CoreOut {
    ops: u64,
    monitor: MonitorReport,
    monitor_actions: u64,
    violation_dump: Option<FlightDump>,
    retransmissions: u64,
    degraded_ops: u64,
    latency: Histogram,
}

impl CoreOut {
    fn into_report(
        self,
        stats: TransportStats,
        coverage: Coverage,
        recovery: RecoveryStats,
        shard_recoveries: Vec<(u64, u64)>,
        elapsed: Duration,
    ) -> StoreReport {
        StoreReport {
            ops: self.ops,
            stats,
            coverage,
            monitor: self.monitor,
            monitor_actions: self.monitor_actions,
            violation_dump: self.violation_dump,
            retransmissions: self.retransmissions,
            degraded_ops: self.degraded_ops,
            recovery,
            shard_recoveries,
            latency_us: self.latency.snapshot(),
            elapsed,
        }
    }
}

/// Spawns per-shard monitors and the client threads, joins them, and merges
/// the shard verdicts. Shared by both tiers.
fn drive_clients(
    cfg: &StoreConfig,
    transport: Arc<dyn Transport>,
    client_rxs: Vec<Receiver<Envelope>>,
    recorder: Arc<FlightRecorder>,
) -> CoreOut {
    assert_eq!(client_rxs.len(), cfg.clients as usize);
    let ring_map = Arc::new(HashRing::new(cfg.seed, cfg.shards));
    let nodes = (cfg.servers_total() + cfg.clients) as usize;
    let actions = Arc::new(AtomicU64::new(0));
    let dump_slot: Arc<Mutex<Option<FlightDump>>> = Arc::new(Mutex::new(None));

    let mut mon_txs = Vec::with_capacity(cfg.shards as usize);
    let mut monitors = Vec::with_capacity(cfg.shards as usize);
    for shard in 0..cfg.shards {
        let (tx, rx) = mpsc::channel::<Action>();
        mon_txs.push(tx);
        monitors.push(spawn_shard_monitor(
            shard,
            Arc::clone(&recorder),
            nodes,
            rx,
            Arc::clone(&actions),
            Arc::clone(&dump_slot),
        ));
    }
    let mon_txs = Arc::new(mon_txs);

    let barrier = Arc::new(Barrier::new(cfg.clients as usize));
    let retransmissions = Arc::new(AtomicU64::new(0));
    let degraded_ops = Arc::new(AtomicU64::new(0));
    let latency = Histogram::unregistered();
    let mut clients = Vec::with_capacity(cfg.clients as usize);
    for (c, rx) in client_rxs.into_iter().enumerate() {
        let c = u32::try_from(c).expect("client count fits u32");
        let cfg = cfg.clone();
        let ring_map = Arc::clone(&ring_map);
        let transport = Arc::clone(&transport);
        let barrier = Arc::clone(&barrier);
        let mon_txs = Arc::clone(&mon_txs);
        let retransmissions = Arc::clone(&retransmissions);
        let degraded_ops = Arc::clone(&degraded_ops);
        let latency = latency.clone();
        let recorder = Arc::clone(&recorder);
        clients.push(thread::spawn(move || {
            store_client_loop(
                c,
                &cfg,
                &ring_map,
                transport.as_ref(),
                rx,
                &barrier,
                &mon_txs,
                &retransmissions,
                &degraded_ops,
                &latency,
                &recorder,
            );
        }));
    }
    drop(mon_txs);
    for h in clients {
        h.join().expect("store client thread");
    }
    let mut monitor = MonitorReport::default();
    for h in monitors {
        let shard_report = h.join().expect("shard monitor thread");
        monitor.segments_ok += shard_report.segments_ok;
        monitor.violations.extend(shard_report.violations);
        monitor.overflowed |= shard_report.overflowed;
    }

    let ops = u64::from(cfg.clients) * cfg.ops_per_client;
    blunt_obs::static_counter!("store.ops.completed").add(ops);
    let violation_dump = dump_slot.lock().expect("dump slot lock").take();
    CoreOut {
        ops,
        monitor,
        monitor_actions: actions.load(Ordering::Relaxed),
        violation_dump,
        retransmissions: retransmissions.load(Ordering::Relaxed),
        degraded_ops: degraded_ops.load(Ordering::Relaxed),
        latency,
    }
}

/// One shard's monitor thread: consumes that shard's call/return stream
/// through the incremental checker; the first violation *anywhere* captures
/// one flight dump into the shared slot. Sound per shard because every op
/// on a key routes to exactly one shard (see the crate docs).
fn spawn_shard_monitor(
    shard: u32,
    recorder: Arc<FlightRecorder>,
    lanes: usize,
    rx: Receiver<Action>,
    actions: Arc<AtomicU64>,
    dump_slot: Arc<Mutex<Option<FlightDump>>>,
) -> thread::JoinHandle<MonitorReport> {
    thread::spawn(move || {
        let ring = recorder.register_current(&format!("monitor-s{shard}"));
        let mon_pid = u32::try_from(lanes).expect("node count fits u32") + shard;
        let mut m = OnlineMonitor::new(Val::Nil, lanes);
        let mut cuts: u64 = 0;
        while let Ok(a) = rx.recv() {
            let ok = m.observe(a);
            actions.fetch_add(1, Ordering::Relaxed);
            let checked = m.segments_checked();
            if checked > cuts {
                cuts = checked;
                ring.record(FlightKind::MonitorCut, mon_pid, checked, 0);
            }
            if !ok {
                ring.record(
                    FlightKind::MonitorViolation,
                    mon_pid,
                    m.violations_found().saturating_sub(1),
                    0,
                );
                let mut slot = dump_slot.lock().expect("dump slot lock");
                if slot.is_none() {
                    // Capture now, while the offending ops are still in
                    // the clients' bounded rings.
                    *slot = Some(recorder.dump());
                }
            }
        }
        m.finish()
    })
}

/// One operation drawn at burst setup, before any message moves.
struct OpSpec {
    idx: u64,
    key: ObjId,
    is_read: bool,
    /// Already counted toward `store.degraded_ops` (each deferred op
    /// counts once, however many fill passes skip it).
    deferred: bool,
}

/// Max ops a client keeps in flight on a *degraded* (recovering) shard.
/// One probe op keeps retransmission pressure on the shard — enough to
/// notice the moment it comes back — while the rest of the pipeline depth
/// serves healthy shards instead of head-of-line blocking behind the
/// recovery window.
const DEGRADED_INFLIGHT_CAP: u32 = 1;

/// Consecutive whole-backoff-window silences from a shard before the
/// client treats it as degraded. One silence is routine under light
/// faults (a dropped reply); two in a row — with a retransmission already
/// outstanding — means the shard is really not answering (crash window or
/// recovery in progress).
const DEGRADED_AFTER_STRIKES: u32 = 2;

/// Per-shard client-side liveness state: a deterministic exponential
/// backoff clock (doubling per silent window from `retransmit_after` up to
/// `retransmit_cap`, reset by any message from the shard's replicas) and
/// the degraded flag that caps pipeline fill. Purely timing-local: none of
/// this feeds the fault schedule, and deferral never changes which
/// envelopes an op sends — only when it starts — so per-link message
/// counts (and with them stats, coverage, and crash/recovery counts) stay
/// seed-deterministic.
struct ShardHealth {
    wait: Duration,
    /// When this shard's stalled ops are next retransmitted; `None` while
    /// the client has nothing in flight there.
    due: Option<Instant>,
    in_flight: u32,
    strikes: u32,
    degraded: bool,
}

impl ShardHealth {
    fn new(initial: Duration) -> ShardHealth {
        ShardHealth {
            wait: initial,
            due: None,
            in_flight: 0,
            strikes: 0,
            degraded: false,
        }
    }

    /// A message from one of this shard's replicas: evidence of progress.
    fn on_message(&mut self, initial: Duration, now: Instant) {
        self.wait = initial;
        self.strikes = 0;
        self.degraded = false;
        self.due = (self.in_flight > 0).then(|| now + self.wait);
    }
}

/// The per-op protocol state: either the real quorum machine or the
/// intentionally-broken single-server read.
enum Machine {
    Abd(ActiveOp),
    Broken { target: Pid },
}

/// One in-flight operation, keyed in the active map by its current `sn`.
struct InFlight {
    spec: OpSpec,
    inv: InvId,
    span: SpanCtx,
    shard: u32,
    machine: Machine,
    t0: Instant,
}

/// The pipelined client: draws a burst of op specs in program order, keeps
/// up to `pipeline_depth` of them in flight (never two on the same key),
/// and multiplexes every reply/ack back to its op by `sn`. All protocol
/// sends go through a per-client [`BatchingTransport`].
///
/// Liveness is **per shard** ([`ShardHealth`]): each shard has its own
/// backoff clock, timeouts retransmit only that shard's stalled ops, and a
/// shard that stays silent for [`DEGRADED_AFTER_STRIKES`] windows is
/// *degraded* — pipeline fill then keeps at most
/// [`DEGRADED_INFLIGHT_CAP`] ops in flight there (counted as
/// `store.degraded_ops` deferrals) so one recovering shard never
/// head-of-line blocks the others.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn store_client_loop(
    c: u32,
    cfg: &StoreConfig,
    ring_map: &HashRing,
    transport: &dyn Transport,
    rx: Receiver<Envelope>,
    barrier: &Barrier,
    mon_txs: &[Sender<Action>],
    retransmissions: &AtomicU64,
    degraded_ops: &AtomicU64,
    latency: &Histogram,
    recorder: &FlightRecorder,
) {
    let servers_total = cfg.servers_total();
    let me = Pid(servers_total + c);
    let ring = recorder.register_current(&format!("client-{}", me.0));
    let mut rng = SplitMix64::new(
        cfg.seed ^ 0x5704_E000_0000_0000 ^ u64::from(c).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let bt = BatchingTransport::new(transport, cfg.batch_max);
    let quorum = cfg.servers_per_shard / 2 + 1;
    let spr = cfg.servers_per_shard;
    let shard_servers: Vec<Vec<Pid>> = (0..cfg.shards)
        .map(|s| (s * spr..(s + 1) * spr).map(Pid).collect())
        .collect();
    let local = Histogram::unregistered();
    let initial_wait = cfg.retransmit_after.min(cfg.retransmit_cap);
    let mut retrans: u64 = 0;
    let mut deferred: u64 = 0;
    let mut sn_counter: u32 = 0;
    let mut op_idx: u64 = 0;
    let mut done: u64 = 0;

    while done < cfg.ops_per_client {
        if done > 0 {
            barrier.wait();
        }
        let burst_n = cfg.burst.min(cfg.ops_per_client - done);
        // Nothing is in flight across a burst boundary, so the wholesale
        // reply-tag retirement socket transports perform here is safe —
        // and the batching layer flushes first (see `BatchingTransport`).
        bt.on_op_start(me);
        // All random draws happen here, in program order: two per op, so
        // the rng stream position is independent of reply scheduling.
        let mut pending: VecDeque<OpSpec> = (0..burst_n)
            .map(|_| {
                let idx = op_idx;
                op_idx += 1;
                let key = ObjId(u32::try_from(rng.draw(cfg.keys as usize)).expect("key fits u32"));
                let is_read = rng.draw(1000) < usize::from(cfg.read_per_mille);
                OpSpec {
                    idx,
                    key,
                    is_read,
                    deferred: false,
                }
            })
            .collect();
        // BTreeMap keeps timeout retransmission order deterministic.
        let mut active: BTreeMap<u32, InFlight> = BTreeMap::new();
        let mut active_keys: HashSet<u32> = HashSet::new();
        let mut health: Vec<ShardHealth> = (0..cfg.shards)
            .map(|_| ShardHealth::new(initial_wait))
            .collect();

        loop {
            // Fill the pipeline: first startable spec front-to-back,
            // skipping keys already in flight and shards that are degraded
            // with their in-flight cap reached. A skipped spec's key stays
            // pending, and any later same-key spec shares both its
            // key-active and shard-degraded status — per-key program order
            // holds.
            while active.len() < cfg.pipeline_depth as usize {
                let mut pos = None;
                for (i, s) in pending.iter_mut().enumerate() {
                    if active_keys.contains(&s.key.0) {
                        continue;
                    }
                    let h = &health[ring_map.shard_for(s.key) as usize];
                    if h.degraded && h.in_flight >= DEGRADED_INFLIGHT_CAP {
                        if !s.deferred {
                            s.deferred = true;
                            deferred += 1;
                            blunt_obs::static_counter!("store.degraded_ops").inc();
                        }
                        continue;
                    }
                    pos = Some(i);
                    break;
                }
                let Some(pos) = pos else {
                    break;
                };
                let spec = pending.remove(pos).expect("position from this deque");
                sn_counter += 1;
                let sn = sn_counter;
                let inv = InvId(u64::from(me.0) * 10_000_000 + spec.idx);
                let shard = ring_map.shard_for(spec.key);
                let (method, arg) = if spec.is_read {
                    (MethodId::READ, Val::Nil)
                } else {
                    // Unique write values keep the checker's search shallow
                    // and make stale reads unambiguous.
                    let v = i64::from(c) * 1_000_000
                        + i64::try_from(spec.idx).expect("op index fits i64");
                    (MethodId::WRITE, Val::Int(v))
                };
                let _ = mon_txs[shard as usize].send(Action::Call {
                    inv,
                    pid: me,
                    obj: spec.key,
                    method,
                    arg: arg.clone(),
                });
                let span = SpanCtx::request(me.0, inv.0);
                ring.record_span_key(
                    if spec.is_read {
                        FlightKind::OpStartRead
                    } else {
                        FlightKind::OpStartWrite
                    },
                    me.0,
                    inv.0,
                    encode_val(match &arg {
                        Val::Int(v) => Some(*v),
                        _ => None,
                    }),
                    span.flight_word(),
                    u64::from(spec.key.0),
                );
                let t0 = Instant::now();
                let dsts = &shard_servers[shard as usize];
                let machine = if cfg.broken_reads && spec.is_read {
                    // The broken read queries ONE replica (rotating) and
                    // returns its value with no write-back — the per-shard
                    // monitor must flag the resulting inversions.
                    let target = dsts[usize::try_from(spec.idx).expect("op index") % dsts.len()];
                    bt.send(
                        Envelope::abd(me, target, AbdMsg::Query { obj: spec.key, sn }, false)
                            .with_span(span),
                    );
                    Machine::Broken { target }
                } else {
                    let kind = if spec.is_read {
                        OpKind::Read
                    } else {
                        OpKind::Write(arg)
                    };
                    let op = ActiveOp::start(inv, spec.key, kind, 1, sn);
                    bt.broadcast_span(me, dsts, &AbdMsg::Query { obj: spec.key, sn }, false, span);
                    Machine::Abd(op)
                };
                active_keys.insert(spec.key.0);
                {
                    let h = &mut health[shard as usize];
                    h.in_flight += 1;
                    if h.due.is_none() {
                        h.due = Some(t0 + h.wait);
                    }
                }
                active.insert(
                    sn,
                    InFlight {
                        spec,
                        inv,
                        span,
                        shard,
                        machine,
                        t0,
                    },
                );
            }
            if active.is_empty() {
                debug_assert!(pending.is_empty(), "startable ops exist while idle");
                break;
            }
            // The replies being waited on can't arrive until the requests
            // actually leave.
            bt.flush_pending();

            // Sleep until the earliest shard retransmission deadline; each
            // shard's backoff runs on its own clock.
            let now = Instant::now();
            let timeout = health
                .iter()
                .filter_map(|h| h.due)
                .map(|d| d.saturating_duration_since(now))
                .min()
                .unwrap_or(initial_wait);
            match rx.recv_timeout(timeout) {
                Ok(env) => {
                    let src_shard =
                        (env.src.0 < servers_total).then(|| env.src.0 / cfg.servers_per_shard);
                    ring.record_span(
                        FlightKind::BusDeliver,
                        me.0,
                        u64::from(env.src.0),
                        env.msg.flight_label(),
                        env.span.flight_word(),
                    );
                    // Any frame from a shard's replica is progress: reset
                    // that shard's backoff and clear its degraded flag.
                    if let Some(s) = src_shard {
                        health[s as usize].on_message(initial_wait, Instant::now());
                    }
                    let Payload::Abd(msg) = env.msg else {
                        continue; // control traffic never targets clients
                    };
                    match msg {
                        AbdMsg::Reply {
                            obj,
                            sn: msg_sn,
                            val,
                            ts,
                        } => {
                            let Some(mut fl) = active.remove(&msg_sn) else {
                                continue; // stale round, already finished
                            };
                            if fl.spec.key != obj {
                                active.insert(msg_sn, fl);
                                continue;
                            }
                            match &mut fl.machine {
                                Machine::Broken { .. } => {
                                    complete_op(
                                        me,
                                        &fl,
                                        val,
                                        &local,
                                        &ring,
                                        mon_txs,
                                        &mut active_keys,
                                    );
                                    let h = &mut health[fl.shard as usize];
                                    h.in_flight -= 1;
                                    if h.in_flight == 0 {
                                        h.due = None;
                                    }
                                }
                                Machine::Abd(op) => {
                                    match op.on_reply(
                                        env.src,
                                        msg_sn,
                                        &val,
                                        ts,
                                        quorum,
                                        me,
                                        &mut sn_counter,
                                    ) {
                                        ReplyEffect::StartUpdate {
                                            sn: new_sn,
                                            val,
                                            ts,
                                            ..
                                        } => {
                                            bt.broadcast_span(
                                                me,
                                                &shard_servers[fl.shard as usize],
                                                &AbdMsg::Update {
                                                    obj,
                                                    sn: new_sn,
                                                    val,
                                                    ts,
                                                },
                                                false,
                                                fl.span,
                                            );
                                            active.insert(new_sn, fl);
                                        }
                                        ReplyEffect::NextQuery { sn: new_sn, .. } => {
                                            bt.broadcast_span(
                                                me,
                                                &shard_servers[fl.shard as usize],
                                                &AbdMsg::Query { obj, sn: new_sn },
                                                false,
                                                fl.span,
                                            );
                                            active.insert(new_sn, fl);
                                        }
                                        ReplyEffect::NeedChoice { .. } => {
                                            // Drawing here would make the rng
                                            // stream depend on arrival order;
                                            // the store pins k = 1 so this
                                            // state is unreachable.
                                            unreachable!("ABD with k = 1 has no object random step")
                                        }
                                        ReplyEffect::Ignored | ReplyEffect::Counted => {
                                            active.insert(msg_sn, fl);
                                        }
                                    }
                                }
                            }
                        }
                        AbdMsg::Ack { obj, sn: msg_sn } => {
                            let Some(mut fl) = active.remove(&msg_sn) else {
                                continue;
                            };
                            if fl.spec.key != obj {
                                active.insert(msg_sn, fl);
                                continue;
                            }
                            let Machine::Abd(op) = &mut fl.machine else {
                                active.insert(msg_sn, fl);
                                continue;
                            };
                            match op.on_ack(env.src, msg_sn, quorum) {
                                AckEffect::Complete { ret } => {
                                    complete_op(
                                        me,
                                        &fl,
                                        ret,
                                        &local,
                                        &ring,
                                        mon_txs,
                                        &mut active_keys,
                                    );
                                    let h = &mut health[fl.shard as usize];
                                    h.in_flight -= 1;
                                    if h.in_flight == 0 {
                                        h.due = None;
                                    }
                                }
                                AckEffect::Ignored | AckEffect::Counted => {
                                    active.insert(msg_sn, fl);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("transport closed while store operations were in flight")
                }
            }
            // Retransmission sweep: every shard whose deadline passed gets
            // its stalled ops rebroadcast — exempt from fault fates, so
            // recovery traffic never consumes schedule indices — its
            // backoff doubled, and a strike toward degraded status. Other
            // shards' clocks are untouched: one silent shard no longer
            // triggers retransmission storms across the healthy ones.
            let now = Instant::now();
            for (shard_idx, h) in health.iter_mut().enumerate() {
                let Some(due) = h.due else {
                    continue;
                };
                if due > now || h.in_flight == 0 {
                    continue;
                }
                let shard_u32 = u32::try_from(shard_idx).expect("shard index fits u32");
                for (sn, fl) in &active {
                    if fl.shard != shard_u32 {
                        continue;
                    }
                    match &fl.machine {
                        Machine::Abd(op) => {
                            if let Some(msg) = op.retransmission() {
                                retrans += 1;
                                blunt_obs::static_counter!("store.client.retransmissions").inc();
                                ring.record_span(
                                    FlightKind::OpRetransmit,
                                    me.0,
                                    u64::from(*sn),
                                    0,
                                    fl.span.flight_word(),
                                );
                                bt.broadcast_span(
                                    me,
                                    &shard_servers[fl.shard as usize],
                                    &msg,
                                    true,
                                    fl.span,
                                );
                            }
                        }
                        Machine::Broken { target } => {
                            retrans += 1;
                            ring.record_span(
                                FlightKind::OpRetransmit,
                                me.0,
                                u64::from(*sn),
                                0,
                                fl.span.flight_word(),
                            );
                            bt.send(
                                Envelope::abd(
                                    me,
                                    *target,
                                    AbdMsg::Query {
                                        obj: fl.spec.key,
                                        sn: *sn,
                                    },
                                    true,
                                )
                                .with_span(fl.span),
                            );
                        }
                    }
                }
                h.strikes += 1;
                if h.strikes >= DEGRADED_AFTER_STRIKES {
                    h.degraded = true;
                }
                let next = h.wait.saturating_mul(2).min(cfg.retransmit_cap);
                if next == cfg.retransmit_cap && h.wait < cfg.retransmit_cap {
                    blunt_obs::static_counter!("store.client.backoff_max_reached").inc();
                }
                h.wait = next;
                h.due = Some(now + h.wait);
            }
        }
        done += burst_n;
    }
    latency.merge(&local);
    retransmissions.fetch_add(retrans, Ordering::Relaxed);
    degraded_ops.fetch_add(deferred, Ordering::Relaxed);
}

/// Seals one finished operation: latency, flight event, monitor `Return`,
/// key release.
fn complete_op(
    me: Pid,
    fl: &InFlight,
    ret: Val,
    local: &Histogram,
    ring: &FlightRing,
    mon_txs: &[Sender<Action>],
    active_keys: &mut HashSet<u32>,
) {
    let lat_us = u64::try_from(fl.t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    local.record(lat_us);
    ring.record_span_key(
        if fl.spec.is_read {
            FlightKind::OpCompleteRead
        } else {
            FlightKind::OpCompleteWrite
        },
        me.0,
        fl.inv.0,
        encode_val(match &ret {
            Val::Int(v) => Some(*v),
            _ => None,
        }),
        fl.span.flight_word(),
        u64::from(fl.spec.key.0),
    );
    let _ = mon_txs[fl.shard as usize].send(Action::Return {
        inv: fl.inv,
        val: ret,
    });
    active_keys.remove(&fl.spec.key.0);
}
