//! blunt-store: a sharded, keyed multi-register store over ABD quorums.
//!
//! The runtime (`blunt_runtime`) drives one replicated register group; this
//! crate composes *many* of them into a keyed store. A seed-deterministic
//! consistent-hash [`ring`] maps each key onto one of N independent ABD
//! shards — disjoint slices of the server set, each running the unmodified
//! [`blunt_runtime::server_loop`] over its own quorum. Clients are
//! *pipelined*: each keeps up to `pipeline_depth` operations in flight at
//! once (per-key program order preserved — two ops on the same key never
//! overlap from one client), and their quorum fan-out is *batched*: a
//! per-client [`batch::BatchingTransport`] coalesces protocol sends into
//! `send_batch` calls that the socket tier packs into single `EnvBatch`
//! frames per destination. Fault fates are still drawn per logical envelope
//! in send order, so batching amortizes syscalls without perturbing the
//! seeded schedule.
//!
//! Safety is checked the same way the runtime checks it, sharded: one
//! online linearizability monitor per shard consumes that shard's call /
//! return stream. This is sound because linearizability of a keyed store
//! decomposes per key (the checker already treats each [`ObjId`] as an
//! independent register), every operation on a key routes to exactly one
//! shard, and each client sends its `Call` before the first message of the
//! op and its `Return` after completion — so each shard's stream is a
//! real-time-ordered history of exactly the keys it owns. The full
//! soundness argument, the sharding model, and the batching/pipelining
//! semantics live in `docs/STORE.md`.
//!
//! [`ObjId`]: blunt_core::ids::ObjId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod ring;
pub mod run;

pub use batch::BatchingTransport;
pub use ring::{HashRing, VNODES};
pub use run::{run_store, run_store_net, StoreConfig, StoreReport};
