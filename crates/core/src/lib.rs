//! Core types for the *blunting* reproduction.
//!
//! This crate contains the model-level vocabulary of the paper
//! *"Blunting an Adversary Against Randomized Concurrent Programs with
//! Linearizable Implementations"* (Attiya, Enea, Welch; PODC 2022):
//!
//! - [`ids`] — newtypes for processes, objects, invocations and call sites;
//! - [`value`] — the domain of values `𝕍` exchanged with shared objects;
//! - [`ratio`] — exact rational arithmetic, so every probability and bound in
//!   the paper is reproduced *exactly* rather than with floating point;
//! - [`history`] — call/return actions and histories (Section 2.1);
//! - [`spec`] — sequential specifications (atomic objects, Section 2.2);
//! - [`preamble`] — preamble mappings `Π` (Section 3);
//! - [`bound`] — the quantitative bound of Theorem 4.2 and Lemma 4.5;
//! - [`outcome`] — program outcomes and distributions over them (Section 2.3).
//!
//! # Example
//!
//! Evaluate the Theorem 4.2 bound for the weakener case study (Appendix A.3.1):
//! with `n = 3` processes, `r = 1` program random step, `k = 2` preamble
//! iterations, atomic bad-outcome probability 1/2 and linearizable bad-outcome
//! probability 1, the bound on the bad outcome is 7/8 (so termination ≥ 1/8):
//!
//! ```
//! use blunt_core::ratio::Ratio;
//! use blunt_core::bound::blunting_bound;
//!
//! let bound = blunting_bound(Ratio::new(1, 2), Ratio::new(1, 1), 3, 1, 2);
//! assert_eq!(bound, Ratio::new(7, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod history;
pub mod ids;
pub mod outcome;
pub mod preamble;
pub mod ratio;
pub mod spec;
pub mod value;

pub use bound::{blunting_bound, prob_x_lower_bound};
pub use history::{Action, History};
pub use ids::{CallSite, InvId, MethodId, ObjId, Pid};
pub use outcome::{Dist, Outcome};
pub use ratio::Ratio;
pub use spec::SequentialSpec;
pub use value::Val;
