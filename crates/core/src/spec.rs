//! Sequential specifications — the atomic objects of Section 2.2.
//!
//! A sequential specification is a deterministic state machine over
//! ([`MethodId`], [`Val`]) operations. The linearizability checkers ask
//! whether a concurrent history can be permuted into a sequential history
//! that this state machine accepts; the simulator uses the same state
//! machines directly as *atomic* objects (every invocation returns
//! immediately), which is how `P(O_a)` is executed.

use crate::ids::MethodId;
use crate::value::Val;
use std::fmt::Debug;
use std::hash::Hash;

/// A deterministic sequential specification.
///
/// `apply` returns `None` when the method/argument pair is outside the
/// object's interface (malformed operation), which checkers treat as
/// non-linearizable.
pub trait SequentialSpec {
    /// The abstract state of the atomic object.
    type State: Clone + Eq + Hash + Debug;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies one operation, returning the successor state and return value.
    fn apply(&self, state: &Self::State, method: MethodId, arg: &Val)
        -> Option<(Self::State, Val)>;
}

/// A read/write register initialized to a given value.
///
/// `Read()` returns the current value; `Write(v)` replaces it and returns
/// [`Val::Nil`].
///
/// ```
/// use blunt_core::spec::{RegisterSpec, SequentialSpec};
/// use blunt_core::ids::MethodId;
/// use blunt_core::value::Val;
///
/// let spec = RegisterSpec::new(Val::Nil);
/// let s0 = spec.init();
/// let (s1, _) = spec.apply(&s0, MethodId::WRITE, &Val::Int(7)).unwrap();
/// let (_, v) = spec.apply(&s1, MethodId::READ, &Val::Nil).unwrap();
/// assert_eq!(v, Val::Int(7));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegisterSpec {
    initial: Val,
}

impl RegisterSpec {
    /// A register with the given initial value.
    #[must_use]
    pub fn new(initial: Val) -> Self {
        RegisterSpec { initial }
    }
}

impl Default for RegisterSpec {
    fn default() -> Self {
        RegisterSpec::new(Val::Nil)
    }
}

impl SequentialSpec for RegisterSpec {
    type State = Val;

    fn init(&self) -> Val {
        self.initial.clone()
    }

    fn apply(&self, state: &Val, method: MethodId, arg: &Val) -> Option<(Val, Val)> {
        match method {
            MethodId::READ => Some((state.clone(), state.clone())),
            MethodId::WRITE => Some((arg.clone(), Val::Nil)),
            _ => None,
        }
    }
}

/// An `n`-component atomic snapshot object (Section 5.2).
///
/// `Update(v)` invoked with argument `Pair(i, v)` writes `v` into component
/// `i`; `Scan()` returns the whole component vector as a [`Val::Tuple`].
///
/// The pairing of the updater index into the argument keeps the operation
/// alphabet uniform across objects; the simulator's per-process API hides it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotSpec {
    components: usize,
    initial: Val,
}

impl SnapshotSpec {
    /// A snapshot with `components` cells, each initialized to `initial`.
    #[must_use]
    pub fn new(components: usize, initial: Val) -> Self {
        SnapshotSpec {
            components,
            initial,
        }
    }

    /// Number of components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }
}

impl SequentialSpec for SnapshotSpec {
    type State = Vec<Val>;

    fn init(&self) -> Vec<Val> {
        vec![self.initial.clone(); self.components]
    }

    fn apply(&self, state: &Vec<Val>, method: MethodId, arg: &Val) -> Option<(Vec<Val>, Val)> {
        match method {
            MethodId::SCAN => Some((state.clone(), Val::Tuple(state.clone()))),
            MethodId::UPDATE => {
                let (idx, v) = arg.as_pair()?;
                let i = usize::try_from(idx.as_int()?).ok()?;
                if i >= self.components {
                    return None;
                }
                let mut next = state.clone();
                next[i] = v.clone();
                Some((next, Val::Nil))
            }
            _ => None,
        }
    }
}

/// A max-register: `Write(v)` raises the stored value to `max(current, v)`,
/// `Read()` returns it. Mentioned in Section 6 as the one object with a known
/// wait-free strongly-linearizable implementation (in bounded form).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MaxRegisterSpec;

impl SequentialSpec for MaxRegisterSpec {
    type State = i64;

    fn init(&self) -> i64 {
        0
    }

    fn apply(&self, state: &i64, method: MethodId, arg: &Val) -> Option<(i64, Val)> {
        match method {
            MethodId::READ => Some((*state, Val::Int(*state))),
            MethodId::WRITE => {
                let v = arg.as_int()?;
                Some(((*state).max(v), Val::Nil))
            }
            _ => None,
        }
    }
}

/// A monotone counter: `Write(_)` increments, `Read()` returns the count.
/// Used in tests exercising the checker on a second object family.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CounterSpec;

impl SequentialSpec for CounterSpec {
    type State = i64;

    fn init(&self) -> i64 {
        0
    }

    fn apply(&self, state: &i64, method: MethodId, arg: &Val) -> Option<(i64, Val)> {
        match method {
            MethodId::READ => Some((*state, Val::Int(*state))),
            MethodId::WRITE => {
                let _ = arg;
                Some((*state + 1, Val::Nil))
            }
            _ => None,
        }
    }
}

/// Runs a sequence of operations through a specification from its initial
/// state, returning the produced return values, or `None` if some operation
/// is malformed.
///
/// This is the "atomic object" executor used by tests and by the
/// equivalence-checking harness of Theorem 4.1.
pub fn run_sequential<S: SequentialSpec>(spec: &S, ops: &[(MethodId, Val)]) -> Option<Vec<Val>> {
    let mut state = spec.init();
    let mut out = Vec::with_capacity(ops.len());
    for (m, a) in ops {
        let (next, ret) = spec.apply(&state, *m, a)?;
        state = next;
        out.push(ret);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_reads_latest_write() {
        let spec = RegisterSpec::default();
        let rets = run_sequential(
            &spec,
            &[
                (MethodId::READ, Val::Nil),
                (MethodId::WRITE, Val::Int(3)),
                (MethodId::READ, Val::Nil),
                (MethodId::WRITE, Val::Int(5)),
                (MethodId::READ, Val::Nil),
            ],
        )
        .unwrap();
        assert_eq!(
            rets,
            vec![Val::Nil, Val::Nil, Val::Int(3), Val::Nil, Val::Int(5)]
        );
    }

    #[test]
    fn register_rejects_unknown_method() {
        let spec = RegisterSpec::default();
        assert!(spec
            .apply(&spec.init(), MethodId::SCAN, &Val::Nil)
            .is_none());
    }

    #[test]
    fn snapshot_scan_sees_updates() {
        let spec = SnapshotSpec::new(3, Val::Nil);
        let s0 = spec.init();
        let (s1, _) = spec
            .apply(&s0, MethodId::UPDATE, &Val::pair(Val::Int(1), Val::Int(42)))
            .unwrap();
        let (_, view) = spec.apply(&s1, MethodId::SCAN, &Val::Nil).unwrap();
        assert_eq!(view, Val::Tuple(vec![Val::Nil, Val::Int(42), Val::Nil]));
    }

    #[test]
    fn snapshot_rejects_out_of_range_component() {
        let spec = SnapshotSpec::new(2, Val::Nil);
        assert!(spec
            .apply(
                &spec.init(),
                MethodId::UPDATE,
                &Val::pair(Val::Int(2), Val::Int(0))
            )
            .is_none());
        assert!(spec
            .apply(&spec.init(), MethodId::UPDATE, &Val::Int(0))
            .is_none());
    }

    #[test]
    fn max_register_is_monotone() {
        let spec = MaxRegisterSpec;
        let rets = run_sequential(
            &spec,
            &[
                (MethodId::WRITE, Val::Int(5)),
                (MethodId::WRITE, Val::Int(3)),
                (MethodId::READ, Val::Nil),
            ],
        )
        .unwrap();
        assert_eq!(rets[2], Val::Int(5));
    }

    #[test]
    fn counter_counts_writes() {
        let spec = CounterSpec;
        let rets = run_sequential(
            &spec,
            &[
                (MethodId::WRITE, Val::Nil),
                (MethodId::WRITE, Val::Nil),
                (MethodId::READ, Val::Nil),
            ],
        )
        .unwrap();
        assert_eq!(rets[2], Val::Int(2));
    }

    #[test]
    fn run_sequential_propagates_malformed_ops() {
        let spec = RegisterSpec::default();
        assert!(run_sequential(&spec, &[(MethodId::SCAN, Val::Nil)]).is_none());
    }
}
