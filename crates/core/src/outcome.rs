//! Program outcomes and exact distributions over them (Section 2.3).
//!
//! The *outcome* of a program execution maps shared-object invocations —
//! identified syntactically by [`CallSite`] — to the values they returned.
//! An adversary defines a probability distribution over outcomes; the paper's
//! quantities `Prob[P(O)‖A → B]` are probabilities of outcome *sets* `B`
//! under such distributions. [`Dist`] keeps these distributions exact.

use crate::ids::CallSite;
use crate::ratio::Ratio;
use crate::value::Val;
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of a program execution: invocation site → return value.
///
/// Sites that did not return in an execution are simply absent, matching the
/// paper's treatment of pending invocations.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Outcome {
    map: BTreeMap<CallSite, Val>,
}

impl Outcome {
    /// An empty outcome (no invocation returned).
    #[must_use]
    pub fn new() -> Outcome {
        Outcome::default()
    }

    /// Records that the invocation at `site` returned `val`.
    pub fn record(&mut self, site: CallSite, val: Val) {
        self.map.insert(site, val);
    }

    /// The value returned at `site`, if it returned.
    #[must_use]
    pub fn get(&self, site: &CallSite) -> Option<&Val> {
        self.map.get(site)
    }

    /// Number of recorded returns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no invocation returned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over (site, value) pairs in site order.
    pub fn iter(&self) -> impl Iterator<Item = (&CallSite, &Val)> {
        self.map.iter()
    }
}

impl FromIterator<(CallSite, Val)> for Outcome {
    fn from_iter<I: IntoIterator<Item = (CallSite, Val)>>(iter: I) -> Outcome {
        Outcome {
            map: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (site, val)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{site}↦{val}")?;
        }
        write!(f, "}}")
    }
}

/// An exact, finitely-supported probability distribution.
///
/// Invariant: weights are positive and sum to at most one (sub-distributions
/// arise mid-construction; [`Dist::is_proper`] checks totality).
///
/// ```
/// use blunt_core::outcome::Dist;
/// use blunt_core::ratio::Ratio;
///
/// let d = Dist::uniform(vec![0, 1]);
/// assert_eq!(d.prob_of(|x| *x == 0), Ratio::new(1, 2));
/// assert!(d.is_proper());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dist<T: Ord> {
    weights: BTreeMap<T, Ratio>,
}

impl<T: Ord> Default for Dist<T> {
    fn default() -> Self {
        Dist {
            weights: BTreeMap::new(),
        }
    }
}

impl<T: Ord + Clone> Dist<T> {
    /// The empty sub-distribution (total mass zero).
    #[must_use]
    pub fn new() -> Dist<T> {
        Dist::default()
    }

    /// The point distribution on `value`.
    #[must_use]
    pub fn point(value: T) -> Dist<T> {
        let mut d = Dist::new();
        d.add(value, Ratio::ONE);
        d
    }

    /// The uniform distribution over the given values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn uniform(values: Vec<T>) -> Dist<T> {
        assert!(!values.is_empty(), "uniform distribution over empty set");
        let w = Ratio::new(1, values.len() as i128);
        let mut d = Dist::new();
        for v in values {
            d.add(v, w);
        }
        d
    }

    /// Adds probability mass to a value (merging with existing mass).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn add(&mut self, value: T, weight: Ratio) {
        assert!(weight >= Ratio::ZERO, "negative probability mass");
        if weight == Ratio::ZERO {
            return;
        }
        *self.weights.entry(value).or_insert(Ratio::ZERO) += weight;
    }

    /// Total probability mass.
    #[must_use]
    pub fn total(&self) -> Ratio {
        self.weights.values().copied().sum()
    }

    /// Returns `true` if the total mass is exactly one.
    #[must_use]
    pub fn is_proper(&self) -> bool {
        self.total() == Ratio::ONE
    }

    /// Probability of the event defined by `pred`:
    /// `Prob[outcome ∈ B]` where `B = {x : pred(x)}`.
    pub fn prob_of<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Ratio {
        self.weights
            .iter()
            .filter(|(v, _)| pred(v))
            .map(|(_, w)| *w)
            .sum()
    }

    /// The probability mass on one specific value.
    #[must_use]
    pub fn mass(&self, value: &T) -> Ratio {
        self.weights.get(value).copied().unwrap_or(Ratio::ZERO)
    }

    /// Mixes another distribution into this one, scaled by `factor`
    /// (used to average over random-step branches).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn mix(&mut self, other: &Dist<T>, factor: Ratio) {
        assert!(factor >= Ratio::ZERO, "negative mixture factor");
        for (v, w) in &other.weights {
            self.add(v.clone(), *w * factor);
        }
    }

    /// Maps the support through `f`, merging collisions.
    #[must_use]
    pub fn map<U: Ord + Clone, F: FnMut(&T) -> U>(&self, mut f: F) -> Dist<U> {
        let mut out = Dist::new();
        for (v, w) in &self.weights {
            out.add(f(v), *w);
        }
        out
    }

    /// Iterates over (value, weight) pairs in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Ratio)> {
        self.weights.iter().map(|(v, w)| (v, *w))
    }

    /// Number of values with positive mass.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.weights.len()
    }
}

impl<T: Ord + Clone + fmt::Display> fmt::Display for Dist<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (v, w)) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}: {w}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Pid;

    fn site(line: u16) -> CallSite {
        CallSite::new(Pid(2), line, 0)
    }

    #[test]
    fn outcome_records_and_reads_back() {
        let mut o = Outcome::new();
        o.record(site(6), Val::Int(1));
        o.record(site(7), Val::Int(0));
        assert_eq!(o.get(&site(6)), Some(&Val::Int(1)));
        assert_eq!(o.get(&site(9)), None);
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
    }

    #[test]
    fn outcome_display_and_ordering() {
        let o: Outcome = vec![(site(7), Val::Int(0)), (site(6), Val::Int(1))]
            .into_iter()
            .collect();
        let s = o.to_string();
        // Sites print in order regardless of insertion order.
        assert!(s.find("L6").unwrap() < s.find("L7").unwrap());
    }

    #[test]
    fn point_distribution_is_proper() {
        let d = Dist::point(42);
        assert!(d.is_proper());
        assert_eq!(d.mass(&42), Ratio::ONE);
        assert_eq!(d.mass(&0), Ratio::ZERO);
    }

    #[test]
    fn uniform_splits_mass_evenly() {
        let d = Dist::uniform(vec!['a', 'b', 'c', 'd']);
        assert_eq!(d.mass(&'a'), Ratio::new(1, 4));
        assert!(d.is_proper());
        assert_eq!(d.prob_of(|c| *c < 'c'), Ratio::new(1, 2));
    }

    #[test]
    fn uniform_merges_duplicates() {
        let d = Dist::uniform(vec![1, 1, 2, 3]);
        assert_eq!(d.mass(&1), Ratio::new(1, 2));
        assert!(d.is_proper());
        assert_eq!(d.support_size(), 3);
    }

    #[test]
    fn mix_averages_branches() {
        // Model a fair coin whose branches give point distributions.
        let mut d = Dist::new();
        d.mix(&Dist::point("heads"), Ratio::new(1, 2));
        d.mix(&Dist::point("tails"), Ratio::new(1, 2));
        assert!(d.is_proper());
        assert_eq!(d.mass(&"heads"), Ratio::new(1, 2));
    }

    #[test]
    fn map_merges_collisions() {
        let d = Dist::uniform(vec![1, 2, 3, 4]);
        let parity = d.map(|x| x % 2);
        assert_eq!(parity.mass(&0), Ratio::new(1, 2));
        assert_eq!(parity.support_size(), 2);
    }

    #[test]
    fn zero_mass_is_not_stored() {
        let mut d: Dist<u8> = Dist::new();
        d.add(1, Ratio::ZERO);
        assert_eq!(d.support_size(), 0);
        assert_eq!(d.total(), Ratio::ZERO);
        assert!(!d.is_proper());
    }

    #[test]
    #[should_panic(expected = "negative probability mass")]
    fn negative_mass_panics() {
        let mut d: Dist<u8> = Dist::new();
        d.add(1, Ratio::new(-1, 2));
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn uniform_over_empty_panics() {
        let _: Dist<u8> = Dist::uniform(vec![]);
    }
}
