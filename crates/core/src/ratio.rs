//! Exact rational arithmetic.
//!
//! Every probability in the paper — the 1/2, 0, 1/8, 3/8, 5/8 of the ABD case
//! study and the `((k−r)/k)^{n−1}` factor of Lemma 4.5 — is a rational with a
//! small denominator. Reproducing them exactly (rather than with `f64`) lets
//! the test suite assert paper identities as equalities.
//!
//! [`Ratio`] is a reduced fraction over `i128`. All arithmetic reduces
//! eagerly; with the magnitudes used in this workspace (denominators are
//! products of small `k` values) overflow is not reachable, but arithmetic is
//! checked in debug builds regardless.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
///
/// ```
/// use blunt_core::ratio::Ratio;
/// let third = Ratio::new(1, 3);
/// assert_eq!(third + third + third, Ratio::ONE);
/// assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
/// assert!(Ratio::new(3, 8) < Ratio::new(1, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Ratio {
    num: i128,
    den: i128, // invariant: den > 0 and gcd(|num|, den) == 1
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let (num, den) = (num * sign, den * sign);
        let g = gcd(num.abs(), den);
        if g == 0 {
            Ratio { num: 0, den: 1 }
        } else {
            Ratio {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates the rational `n / 1`.
    #[must_use]
    pub fn from_int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// The numerator (of the reduced form; sign lives here).
    #[must_use]
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (of the reduced form; always positive).
    #[must_use]
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Converts to `f64`, for reporting only (never used in proofs/tests of
    /// exact identities).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Raises to a non-negative integer power by repeated squaring.
    ///
    /// ```
    /// use blunt_core::ratio::Ratio;
    /// assert_eq!(Ratio::new(1, 2).pow(3), Ratio::new(1, 8));
    /// assert_eq!(Ratio::new(2, 3).pow(0), Ratio::ONE);
    /// ```
    #[must_use]
    pub fn pow(self, mut exp: u32) -> Ratio {
        let mut base = self;
        let mut acc = Ratio::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }

    /// Returns `1 − self` (the complement of a probability).
    #[must_use]
    pub fn complement(self) -> Ratio {
        Ratio::ONE - self
    }

    /// Returns `true` if the value lies in the closed interval `[0, 1]`.
    #[must_use]
    pub fn is_probability(self) -> bool {
        self >= Ratio::ZERO && self <= Ratio::ONE
    }

    /// The smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    #[must_use]
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The absolute value.
    #[must_use]
    pub fn abs(self) -> Ratio {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// The reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "reciprocal of zero");
        Ratio::new(self.den, self.num)
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Ratio {
        Ratio::from_int(n)
    }
}

impl From<u32> for Ratio {
    fn from(n: u32) -> Ratio {
        Ratio::from_int(i128::from(n))
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero rational");
        Ratio::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, Add::add)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, -7), Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let half = Ratio::new(1, 2);
        let third = Ratio::new(1, 3);
        assert_eq!(half + third, Ratio::new(5, 6));
        assert_eq!(half - third, Ratio::new(1, 6));
        assert_eq!(half * third, Ratio::new(1, 6));
        assert_eq!(half / third, Ratio::new(3, 2));
        assert_eq!(-half, Ratio::new(-1, 2));
        assert_eq!(half.recip(), Ratio::from_int(2));
    }

    #[test]
    fn ordering_and_min_max() {
        assert!(Ratio::new(3, 8) < Ratio::new(1, 2));
        assert!(Ratio::new(5, 8) > Ratio::new(1, 2));
        assert_eq!(Ratio::new(3, 8).max(Ratio::new(5, 8)), Ratio::new(5, 8));
        assert_eq!(Ratio::new(3, 8).min(Ratio::new(5, 8)), Ratio::new(3, 8));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
    }

    #[test]
    fn pow_and_complement() {
        assert_eq!(Ratio::new(1, 2).pow(3), Ratio::new(1, 8));
        assert_eq!(Ratio::new(3, 4).complement(), Ratio::new(1, 4));
        assert_eq!(Ratio::new(7, 8).pow(1), Ratio::new(7, 8));
    }

    #[test]
    fn probability_range() {
        assert!(Ratio::new(5, 8).is_probability());
        assert!(Ratio::ZERO.is_probability());
        assert!(Ratio::ONE.is_probability());
        assert!(!Ratio::new(9, 8).is_probability());
        assert!(!Ratio::new(-1, 8).is_probability());
    }

    #[test]
    fn sum_and_assign_ops() {
        let total: Ratio = (1..=4).map(|d| Ratio::new(1, d)).sum();
        assert_eq!(total, Ratio::new(25, 12));
        let mut x = Ratio::new(1, 2);
        x += Ratio::new(1, 4);
        x -= Ratio::new(1, 8);
        x *= Ratio::from_int(2);
        assert_eq!(x, Ratio::new(5, 4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ratio::new(5, 8).to_string(), "5/8");
        assert_eq!(Ratio::from_int(3).to_string(), "3");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn f64_conversion_is_close() {
        assert!((Ratio::new(5, 8).to_f64() - 0.625).abs() < 1e-12);
    }
}
