//! Identifier newtypes used throughout the workspace.
//!
//! The paper identifies method invocations both by an opaque unique identifier
//! `i` (used in call/return actions) and, when relating outcomes across
//! executions, by a *syntactic* identifier: a triple of process id, control
//! point (line number) and occurrence count (Section 2.3). [`InvId`] plays the
//! first role and [`CallSite`] the second.

use std::fmt;

/// A process identifier.
///
/// Processes are numbered densely from zero within a system; the adversary's
/// schedule (Section 2.4) is a sequence of these.
///
/// ```
/// use blunt_core::ids::Pid;
/// let p = Pid(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pid(pub u32);

impl Pid {
    /// Returns the process index as a `usize`, for indexing into dense tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A shared-object identifier within a program.
///
/// A program `P(O)` uses a finite set of shared objects; each is addressed by
/// an `ObjId` so that outcomes and traces can name the object an invocation
/// targeted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Returns the object index as a `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A unique identifier of a single method invocation within one execution.
///
/// Each transition labeled by a call action carries a fresh `InvId`; the
/// matching return action carries the same one (well-formedness, Section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct InvId(pub u64);

impl fmt::Display for InvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

/// A method name within an object's interface.
///
/// Interpreting the numeric payload is up to each object implementation; the
/// conventional assignments used across this workspace are exported as
/// constants ([`MethodId::READ`], [`MethodId::WRITE`], [`MethodId::SCAN`],
/// [`MethodId::UPDATE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MethodId(pub u16);

impl MethodId {
    /// Register `Read()` / the read-like method of an object.
    pub const READ: MethodId = MethodId(0);
    /// Register `Write(v)` / the write-like method of an object.
    pub const WRITE: MethodId = MethodId(1);
    /// Snapshot `Scan()`.
    pub const SCAN: MethodId = MethodId(2);
    /// Snapshot `Update(v)`.
    pub const UPDATE: MethodId = MethodId(3);
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MethodId::READ => write!(f, "Read"),
            MethodId::WRITE => write!(f, "Write"),
            MethodId::SCAN => write!(f, "Scan"),
            MethodId::UPDATE => write!(f, "Update"),
            MethodId(other) => write!(f, "m{other}"),
        }
    }
}

/// The *syntactic* identity of an invocation: which process invoked it, at
/// which control point of the program text, for the which-th time.
///
/// Outcomes (Section 2.3) map `CallSite`s to return values so that outcomes of
/// different executions of the same program can be compared.
///
/// ```
/// use blunt_core::ids::{CallSite, Pid};
/// let s = CallSite::new(Pid(2), 6, 0);
/// assert_eq!(s.to_string(), "p2@L6#0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CallSite {
    /// Invoking process.
    pub pid: Pid,
    /// Control point (line number) in the program text.
    pub line: u16,
    /// Zero-based occurrence count of this control point (for loops).
    pub occurrence: u16,
}

impl CallSite {
    /// Creates a call site.
    #[must_use]
    pub fn new(pid: Pid, line: u16, occurrence: u16) -> Self {
        CallSite {
            pid,
            line,
            occurrence,
        }
    }
}

impl fmt::Display for CallSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@L{}#{}", self.pid, self.line, self.occurrence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn pid_display_and_index() {
        assert_eq!(Pid(0).to_string(), "p0");
        assert_eq!(Pid(7).index(), 7);
    }

    #[test]
    fn method_display_names() {
        assert_eq!(MethodId::READ.to_string(), "Read");
        assert_eq!(MethodId::WRITE.to_string(), "Write");
        assert_eq!(MethodId::SCAN.to_string(), "Scan");
        assert_eq!(MethodId::UPDATE.to_string(), "Update");
        assert_eq!(MethodId(9).to_string(), "m9");
    }

    #[test]
    fn call_sites_order_by_pid_then_line_then_occurrence() {
        let mut set = BTreeSet::new();
        set.insert(CallSite::new(Pid(1), 3, 0));
        set.insert(CallSite::new(Pid(0), 9, 2));
        set.insert(CallSite::new(Pid(0), 9, 1));
        let v: Vec<_> = set.into_iter().collect();
        assert_eq!(v[0], CallSite::new(Pid(0), 9, 1));
        assert_eq!(v[1], CallSite::new(Pid(0), 9, 2));
        assert_eq!(v[2], CallSite::new(Pid(1), 3, 0));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        assert_ne!(InvId(1), InvId(2));
        assert_eq!(ObjId(3).index(), 3);
        assert_eq!(ObjId(3).to_string(), "obj3");
        assert_eq!(InvId(5).to_string(), "inv5");
    }
}
