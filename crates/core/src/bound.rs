//! The quantitative blunting bound — Theorem 4.2 and Lemma 4.5.
//!
//! Theorem 4.2 states that for a program with `n ≥ 1` processes and at most
//! `r ≥ 1` program random steps, using preamble-iterated objects `O^k`:
//!
//! ```text
//! Prob[O^k] ≤ Prob[O_a] + [1 − ((max{0, k−r})/k)^(n−1)] · (Prob[O] − Prob[O_a])
//! ```
//!
//! This module computes the bound exactly over [`Ratio`]s and provides the
//! sweep generators that regenerate the paper's bound-curve "figures"
//! (experiment E5 in `DESIGN.md`).

use crate::ratio::Ratio;

/// Lemma 4.5: a lower bound on `Prob[X]`, the probability that every object
/// random step selects a randomization-free preamble iteration:
///
/// ```text
/// Prob[X] ≥ ((max{0, k − r}) / k)^(n−1)
/// ```
///
/// # Panics
///
/// Panics if `k == 0` (the transformation requires `k ≥ 1`).
///
/// ```
/// use blunt_core::bound::prob_x_lower_bound;
/// use blunt_core::ratio::Ratio;
/// // Weakener case study: n = 3, r = 1, k = 2 ⇒ (1/2)² = 1/4.
/// assert_eq!(prob_x_lower_bound(3, 1, 2), Ratio::new(1, 4));
/// ```
#[must_use]
pub fn prob_x_lower_bound(n: u32, r: u32, k: u32) -> Ratio {
    assert!(
        k >= 1,
        "the preamble-iterating transformation requires k ≥ 1"
    );
    if n <= 1 {
        // With a single process there are no other processes whose preamble
        // iterations can overlap a random step: Prob[X] = 1.
        return Ratio::ONE;
    }
    let numer = k.saturating_sub(r);
    Ratio::new(i128::from(numer), i128::from(k)).pow(n - 1)
}

/// The *adversary-advantage fraction* of Theorem 4.2:
/// `1 − ((max{0, k−r})/k)^(n−1)` — the coefficient multiplying
/// `Prob[O] − Prob[O_a]`.
///
/// It is `1` whenever `k ≤ r` (the adversary loses nothing) and tends to `0`
/// as `k → ∞` (the adversary is fully blunted).
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn adversary_advantage(n: u32, r: u32, k: u32) -> Ratio {
    prob_x_lower_bound(n, r, k).complement()
}

/// Theorem 4.2: the upper bound on `Prob[O^k]` given the atomic probability
/// `Prob[O_a]`, the linearizable probability `Prob[O]`, and the parameters
/// `n`, `r`, `k`.
///
/// # Panics
///
/// Panics if `k == 0`, if either probability is outside `[0, 1]`, or if
/// `p_lin < p_atomic` (which would contradict Proposition 2.2).
///
/// ```
/// use blunt_core::bound::blunting_bound;
/// use blunt_core::ratio::Ratio;
/// // Appendix A.3.1: 1/2 + (1 − (1/2)²)·(1 − 1/2) = 7/8, i.e. termination ≥ 1/8.
/// let b = blunting_bound(Ratio::new(1, 2), Ratio::ONE, 3, 1, 2);
/// assert_eq!(b, Ratio::new(7, 8));
/// ```
#[must_use]
pub fn blunting_bound(p_atomic: Ratio, p_lin: Ratio, n: u32, r: u32, k: u32) -> Ratio {
    assert!(p_atomic.is_probability(), "Prob[O_a] must be in [0, 1]");
    assert!(p_lin.is_probability(), "Prob[O] must be in [0, 1]");
    assert!(
        p_lin >= p_atomic,
        "Prob[O] ≥ Prob[O_a] must hold (Proposition 2.2)"
    );
    p_atomic + adversary_advantage(n, r, k) * (p_lin - p_atomic)
}

/// The smallest `k` such that the adversary-advantage fraction is at most
/// `epsilon`, or `None` if `epsilon` is not achievable (`epsilon < 0`) or no
/// `k ≤ max_k` suffices.
///
/// Exposes the paper's trade-off between time complexity (grows with `k`)
/// and bad-outcome probability (shrinks with `k`) as a planning API.
///
/// ```
/// use blunt_core::bound::min_iterations_for_advantage;
/// use blunt_core::ratio::Ratio;
/// // n = 3, r = 1: advantage(k) = 1 − ((k−1)/k)²; advantage(8) = 15/64 ≤ 1/4.
/// assert_eq!(
///     min_iterations_for_advantage(3, 1, Ratio::new(1, 4), 1024),
///     Some(8)
/// );
/// ```
#[must_use]
pub fn min_iterations_for_advantage(n: u32, r: u32, epsilon: Ratio, max_k: u32) -> Option<u32> {
    if epsilon < Ratio::ZERO {
        return None;
    }
    // advantage is non-increasing in k, so a linear scan (or binary search)
    // over k is correct; sweeps here are small so a scan keeps it simple.
    (1..=max_k).find(|&k| adversary_advantage(n, r, k) <= epsilon)
}

/// One point of a bound-curve sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoundPoint {
    /// Number of preamble iterations.
    pub k: u32,
    /// Number of processes.
    pub n: u32,
    /// Maximum number of program random steps.
    pub r: u32,
    /// Lemma 4.5 lower bound on `Prob[X]`.
    pub prob_x: Ratio,
    /// Theorem 4.2 advantage fraction `1 − Prob[X]`.
    pub advantage: Ratio,
    /// Theorem 4.2 upper bound on `Prob[O^k]`.
    pub bound: Ratio,
}

/// Generates the Theorem 4.2 bound curve for fixed `(n, r, p_atomic, p_lin)`
/// over `k = 1..=k_max` (experiment E5).
///
/// # Panics
///
/// Panics under the same conditions as [`blunting_bound`].
#[must_use]
pub fn bound_curve(p_atomic: Ratio, p_lin: Ratio, n: u32, r: u32, k_max: u32) -> Vec<BoundPoint> {
    (1..=k_max)
        .map(|k| {
            let prob_x = prob_x_lower_bound(n, r, k);
            BoundPoint {
                k,
                n,
                r,
                prob_x,
                advantage: prob_x.complement(),
                bound: blunting_bound(p_atomic, p_lin, n, r, k),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> Ratio {
        Ratio::new(1, 2)
    }

    #[test]
    fn lemma_4_5_weakener_numbers() {
        // n = 3, r = 1.
        assert_eq!(prob_x_lower_bound(3, 1, 1), Ratio::ZERO); // k ≤ r
        assert_eq!(prob_x_lower_bound(3, 1, 2), Ratio::new(1, 4));
        assert_eq!(prob_x_lower_bound(3, 1, 4), Ratio::new(9, 16));
    }

    #[test]
    fn k_le_r_gives_no_blunting() {
        for k in 1..=3 {
            assert_eq!(
                blunting_bound(half(), Ratio::ONE, 4, 3, k),
                Ratio::ONE,
                "k = {k} ≤ r = 3 must give the unbounded linearizable probability"
            );
        }
    }

    #[test]
    fn single_process_has_no_adversary_advantage() {
        assert_eq!(prob_x_lower_bound(1, 5, 1), Ratio::ONE);
        assert_eq!(
            blunting_bound(half(), Ratio::ONE, 1, 5, 1),
            half(),
            "with n = 1 the bound collapses to the atomic probability"
        );
    }

    #[test]
    fn appendix_a_3_1_bound_is_seven_eighths() {
        let b = blunting_bound(half(), Ratio::ONE, 3, 1, 2);
        assert_eq!(b, Ratio::new(7, 8));
        // Termination probability is therefore at least 1/8.
        assert_eq!(b.complement(), Ratio::new(1, 8));
    }

    #[test]
    fn bound_is_monotone_decreasing_in_k() {
        let curve = bound_curve(half(), Ratio::ONE, 3, 1, 64);
        for w in curve.windows(2) {
            assert!(w[1].bound <= w[0].bound, "bound must not increase with k");
        }
        assert_eq!(curve[0].bound, Ratio::ONE);
        assert!(curve[63].bound < Ratio::new(9, 16));
    }

    #[test]
    fn bound_is_monotone_increasing_in_n_and_r() {
        for k in 2..=16 {
            let base = blunting_bound(half(), Ratio::ONE, 3, 1, k);
            assert!(blunting_bound(half(), Ratio::ONE, 4, 1, k) >= base);
            assert!(blunting_bound(half(), Ratio::ONE, 3, 2, k) >= base);
        }
    }

    #[test]
    fn bound_approaches_atomic_probability() {
        let b = blunting_bound(half(), Ratio::ONE, 3, 1, 4096);
        assert!(b - half() < Ratio::new(1, 1000));
        assert!(
            b >= half(),
            "bound never drops below the atomic probability"
        );
    }

    #[test]
    fn bound_equals_atomic_when_lin_equals_atomic() {
        // Strongly linearizable objects: Prob[O] = Prob[O_a] (Theorem 2.3);
        // the transformation can neither help nor hurt.
        let b = blunting_bound(half(), half(), 5, 3, 2);
        assert_eq!(b, half());
    }

    #[test]
    fn min_iterations_scan_matches_direct_check() {
        let eps = Ratio::new(1, 10);
        let k = min_iterations_for_advantage(4, 2, eps, 4096).unwrap();
        assert!(adversary_advantage(4, 2, k) <= eps);
        assert!(adversary_advantage(4, 2, k - 1) > eps);
    }

    #[test]
    fn min_iterations_returns_none_when_unreachable() {
        assert_eq!(
            min_iterations_for_advantage(3, 1, Ratio::new(-1, 2), 64),
            None
        );
        assert_eq!(
            min_iterations_for_advantage(64, 32, Ratio::new(1, 1_000_000), 2),
            None
        );
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_iterations_panics() {
        let _ = prob_x_lower_bound(3, 1, 0);
    }

    #[test]
    #[should_panic(expected = "Proposition 2.2")]
    fn inverted_probabilities_panic() {
        let _ = blunting_bound(Ratio::ONE, half(), 3, 1, 2);
    }
}
