//! The domain of values `𝕍` exchanged with shared objects.
//!
//! Arguments and return values of every method in the workspace are drawn from
//! the single recursive type [`Val`]. Keeping a single closed domain (rather
//! than a generic parameter) is what lets the simulator hash and memoize whole
//! system states, which the exact adversary search depends on.

use std::fmt;

/// A value in the domain `𝕍`.
///
/// - `Nil` is the paper's `⊥` (e.g. the initial value of register `R` in
///   Algorithm 1);
/// - `Int` covers register contents, process ids written as values, and
///   timestamp integers;
/// - `Pair` covers (value, timestamp)-style composites;
/// - `Tuple` covers snapshot views and other fixed-width vectors.
///
/// ```
/// use blunt_core::value::Val;
/// let v = Val::pair(Val::Int(1), Val::Int(7));
/// assert_eq!(v.to_string(), "(1, 7)");
/// assert!(Val::Nil < Val::Int(0));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Val {
    /// The undefined/initial value `⊥`.
    #[default]
    Nil,
    /// An integer value.
    Int(i64),
    /// An ordered pair.
    Pair(Box<(Val, Val)>),
    /// A fixed-width tuple (e.g. a snapshot view).
    Tuple(Vec<Val>),
}

impl Val {
    /// Convenience constructor for a pair.
    #[must_use]
    pub fn pair(a: Val, b: Val) -> Val {
        Val::Pair(Box::new((a, b)))
    }

    /// Returns the integer payload, if this value is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns `true` if this value is `⊥`.
    #[must_use]
    pub fn is_nil(&self) -> bool {
        matches!(self, Val::Nil)
    }

    /// Returns the components of a pair, if this value is a `Pair`.
    #[must_use]
    pub fn as_pair(&self) -> Option<(&Val, &Val)> {
        match self {
            Val::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// Returns the elements of a tuple, if this value is a `Tuple`.
    #[must_use]
    pub fn as_tuple(&self) -> Option<&[Val]> {
        match self {
            Val::Tuple(t) => Some(t),
            _ => None,
        }
    }
}

impl From<i64> for Val {
    fn from(i: i64) -> Val {
        Val::Int(i)
    }
}

impl From<u32> for Val {
    fn from(i: u32) -> Val {
        Val::Int(i64::from(i))
    }
}

impl FromIterator<Val> for Val {
    fn from_iter<I: IntoIterator<Item = Val>>(iter: I) -> Val {
        Val::Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Nil => write!(f, "⊥"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Pair(p) => write!(f, "({}, {})", p.0, p.1),
            Val::Tuple(t) => {
                write!(f, "[")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_default_and_smallest() {
        assert_eq!(Val::default(), Val::Nil);
        assert!(Val::Nil < Val::Int(i64::MIN));
        assert!(Val::Nil.is_nil());
        assert!(!Val::Int(0).is_nil());
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Val::Int(4).as_int(), Some(4));
        assert_eq!(Val::Nil.as_int(), None);
        let p = Val::pair(Val::Int(1), Val::Nil);
        assert_eq!(p.as_pair(), Some((&Val::Int(1), &Val::Nil)));
        assert_eq!(Val::Int(0).as_pair(), None);
        let t: Val = vec![Val::Int(1), Val::Int(2)].into_iter().collect();
        assert_eq!(t.as_tuple(), Some(&[Val::Int(1), Val::Int(2)][..]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::Nil.to_string(), "⊥");
        assert_eq!(Val::Int(-3).to_string(), "-3");
        assert_eq!(
            Val::Tuple(vec![Val::Nil, Val::Int(2)]).to_string(),
            "[⊥, 2]"
        );
    }

    #[test]
    fn ordering_is_total_on_mixed_shapes() {
        let mut vs = [
            Val::Tuple(vec![]),
            Val::Int(9),
            Val::Nil,
            Val::pair(Val::Int(0), Val::Int(0)),
        ];
        vs.sort();
        assert_eq!(vs[0], Val::Nil);
    }

    #[test]
    fn conversions_from_integers() {
        assert_eq!(Val::from(5i64), Val::Int(5));
        assert_eq!(Val::from(5u32), Val::Int(5));
    }
}
