//! Preamble mappings `Π` (Section 3 of the paper).
//!
//! A preamble mapping associates each method of an object with the control
//! point that ends its *preamble* — the effect-free prefix that the
//! preamble-iterating transformation (Section 4.1) repeats `k` times.
//!
//! In this workspace, protocol implementations are explicit step machines, so
//! "control points" are phase markers rather than literal line numbers. The
//! implementations emit a `PreamblePassed` trace event at the moment the
//! mapped control point is executed; the tail-strong-linearizability checker
//! consumes those events to decide which executions are Π-complete.

use crate::ids::MethodId;
use std::collections::BTreeMap;
use std::fmt;

/// A control point (line number) within a method body.
///
/// `ControlPoint(0)` is the initial control point `ℓ₀`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ControlPoint(pub u16);

impl ControlPoint {
    /// The initial control point `ℓ₀` (the call transition itself).
    pub const INITIAL: ControlPoint = ControlPoint(0);
}

impl fmt::Display for ControlPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A preamble mapping `Π`: method → last control point of its preamble.
///
/// Methods absent from the map implicitly have the trivial preamble `ℓ₀`
/// (empty preamble), matching the paper's convention that strong
/// linearizability is tail strong linearizability w.r.t. `Π₀`.
///
/// ```
/// use blunt_core::preamble::{ControlPoint, PreambleMapping};
/// use blunt_core::ids::MethodId;
///
/// let pi = PreambleMapping::abd();
/// assert_eq!(pi.of(MethodId::READ), ControlPoint(22));
/// assert_eq!(pi.of(MethodId::WRITE), ControlPoint(26));
/// assert!(PreambleMapping::trivial().is_trivial());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PreambleMapping {
    map: BTreeMap<MethodId, ControlPoint>,
}

impl PreambleMapping {
    /// The trivial mapping `Π₀` (every preamble is empty); tail strong
    /// linearizability w.r.t. `Π₀` is exactly strong linearizability.
    #[must_use]
    pub fn trivial() -> Self {
        PreambleMapping::default()
    }

    /// Builds a mapping from explicit pairs.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (MethodId, ControlPoint)>>(pairs: I) -> Self {
        PreambleMapping {
            map: pairs.into_iter().collect(),
        }
    }

    /// The mapping `Π_ABD` of Theorem 5.1: `Read` and `Write` end their
    /// preambles at the control points where the result of `queryPhase` is
    /// assigned (Lines 22 and 26 of Algorithm 3).
    #[must_use]
    pub fn abd() -> Self {
        PreambleMapping::from_pairs([
            (MethodId::READ, ControlPoint(22)),
            (MethodId::WRITE, ControlPoint(26)),
        ])
    }

    /// The mapping for the Afek et al. snapshot (Section 5.2): `Scan`'s
    /// preamble ends just before it returns; `Update`'s preamble is empty
    /// (the paper notes it may be extended up to the end of its embedded
    /// scan — see [`PreambleMapping::snapshot_extended`]).
    #[must_use]
    pub fn snapshot() -> Self {
        PreambleMapping::from_pairs([(MethodId::SCAN, ControlPoint(99))])
    }

    /// The extended snapshot mapping in which `Update`'s preamble covers its
    /// embedded scan (Section 5.2's remark); larger preambles give more
    /// blunting at more cost.
    #[must_use]
    pub fn snapshot_extended() -> Self {
        PreambleMapping::from_pairs([
            (MethodId::SCAN, ControlPoint(99)),
            (MethodId::UPDATE, ControlPoint(50)),
        ])
    }

    /// The mapping for the Vitányi–Awerbuch multi-writer register
    /// (Section 5.3): the read's preamble ends just before it returns, the
    /// write's just before the write to `Val[i]`.
    #[must_use]
    pub fn vitanyi_awerbuch() -> Self {
        PreambleMapping::from_pairs([
            (MethodId::READ, ControlPoint(99)),
            (MethodId::WRITE, ControlPoint(40)),
        ])
    }

    /// The mapping for the Israeli–Li multi-reader register (Section 5.4):
    /// the read's preamble ends just before its first write to `Report`; the
    /// write's preamble is empty.
    #[must_use]
    pub fn israeli_li() -> Self {
        PreambleMapping::from_pairs([(MethodId::READ, ControlPoint(60))])
    }

    /// The preamble end point of a method (`ℓ₀` if unmapped).
    #[must_use]
    pub fn of(&self, method: MethodId) -> ControlPoint {
        self.map
            .get(&method)
            .copied()
            .unwrap_or(ControlPoint::INITIAL)
    }

    /// Returns `true` if every method has an empty preamble (this is `Π₀`).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.map.values().all(|&c| c == ControlPoint::INITIAL)
    }

    /// Iterates over the explicitly mapped (method, control point) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, ControlPoint)> + '_ {
        self.map.iter().map(|(m, c)| (*m, *c))
    }

    /// Union of two mappings over disjoint method sets (`Π₁ ∪ … ∪ Πₘ` in
    /// Theorem 3.1, locality). Later entries win on collision.
    #[must_use]
    pub fn union(&self, other: &PreambleMapping) -> PreambleMapping {
        let mut map = self.map.clone();
        map.extend(other.map.iter().map(|(m, c)| (*m, *c)));
        PreambleMapping { map }
    }
}

impl fmt::Display for PreambleMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Π{{")?;
        for (i, (m, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}↦{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_mapping_sends_everything_to_initial() {
        let pi = PreambleMapping::trivial();
        assert_eq!(pi.of(MethodId::READ), ControlPoint::INITIAL);
        assert_eq!(pi.of(MethodId(200)), ControlPoint::INITIAL);
        assert!(pi.is_trivial());
    }

    #[test]
    fn abd_mapping_matches_theorem_5_1() {
        let pi = PreambleMapping::abd();
        assert_eq!(pi.of(MethodId::READ), ControlPoint(22));
        assert_eq!(pi.of(MethodId::WRITE), ControlPoint(26));
        assert!(!pi.is_trivial());
    }

    #[test]
    fn snapshot_extended_adds_update_preamble() {
        let base = PreambleMapping::snapshot();
        let ext = PreambleMapping::snapshot_extended();
        assert_eq!(base.of(MethodId::UPDATE), ControlPoint::INITIAL);
        assert_ne!(ext.of(MethodId::UPDATE), ControlPoint::INITIAL);
    }

    #[test]
    fn union_is_locality_composition() {
        let u = PreambleMapping::abd().union(&PreambleMapping::snapshot());
        assert_eq!(u.of(MethodId::READ), ControlPoint(22));
        assert_eq!(u.of(MethodId::SCAN), ControlPoint(99));
    }

    #[test]
    fn display_lists_pairs() {
        let s = PreambleMapping::abd().to_string();
        assert!(s.contains("Read↦ℓ22"));
        assert!(s.contains("Write↦ℓ26"));
    }

    #[test]
    fn explicit_trivial_entries_count_as_trivial() {
        let pi = PreambleMapping::from_pairs([(MethodId::READ, ControlPoint::INITIAL)]);
        assert!(pi.is_trivial());
        assert_eq!(pi.iter().count(), 1);
    }
}
