//! Call/return actions and histories (Section 2.1 of the paper).
//!
//! The history of an execution is its projection onto call and return
//! actions. Linearizability and its strengthenings are properties of
//! histories, so this module is the interface between the simulator (which
//! produces executions) and the checkers in `blunt-lincheck`.

use crate::ids::{InvId, MethodId, ObjId, Pid};
use crate::value::Val;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A call or return action labeling a transition (Section 2.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// `call M(x)_i` — invocation `i` of method `M` with argument `x` on
    /// object `obj` by process `pid`.
    Call {
        /// Unique invocation identifier.
        inv: InvId,
        /// Invoking process.
        pid: Pid,
        /// Target object.
        obj: ObjId,
        /// Invoked method.
        method: MethodId,
        /// Argument (use [`Val::Nil`] for nullary methods).
        arg: Val,
    },
    /// `ret y_i` — invocation `i` returning value `y`.
    Return {
        /// Invocation identifier matching an earlier `Call`.
        inv: InvId,
        /// Returned value.
        val: Val,
    },
}

impl Action {
    /// The invocation identifier this action belongs to.
    #[must_use]
    pub fn inv(&self) -> InvId {
        match self {
            Action::Call { inv, .. } | Action::Return { inv, .. } => *inv,
        }
    }

    /// Returns `true` if this is a call action.
    #[must_use]
    pub fn is_call(&self) -> bool {
        matches!(self, Action::Call { .. })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Call {
                inv,
                pid,
                obj,
                method,
                arg,
            } => write!(f, "call {method}({arg})_{inv} [{pid} on {obj}]"),
            Action::Return { inv, val } => write!(f, "ret {val}_{inv}"),
        }
    }
}

/// A complete description of one invocation extracted from a history: its
/// call data plus the return value if it returned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvocationRecord {
    /// Unique invocation identifier.
    pub inv: InvId,
    /// Invoking process.
    pub pid: Pid,
    /// Target object.
    pub obj: ObjId,
    /// Invoked method.
    pub method: MethodId,
    /// Argument.
    pub arg: Val,
    /// Return value, if the invocation completed in this history.
    pub ret: Option<Val>,
}

/// A history: a finite sequence of call and return actions.
///
/// ```
/// use blunt_core::history::{Action, History};
/// use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
/// use blunt_core::value::Val;
///
/// let mut h = History::new();
/// h.push(Action::Call {
///     inv: InvId(0), pid: Pid(0), obj: ObjId(0),
///     method: MethodId::WRITE, arg: Val::Int(1),
/// });
/// h.push(Action::Return { inv: InvId(0), val: Val::Nil });
/// assert!(h.is_well_formed());
/// assert!(h.is_sequential());
/// assert!(h.pending().is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct History {
    actions: Vec<Action>,
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> History {
        History::default()
    }

    /// Appends an action.
    pub fn push(&mut self, a: Action) {
        self.actions.push(a);
    }

    /// The actions in order.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if the history has no actions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Well-formedness (Section 2.1): every return is preceded by a matching
    /// call, and each invocation id has at most one call and one return.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        let mut called = BTreeSet::new();
        let mut returned = BTreeSet::new();
        for a in &self.actions {
            match a {
                Action::Call { inv, .. } => {
                    if !called.insert(*inv) {
                        return false;
                    }
                }
                Action::Return { inv, .. } => {
                    if !called.contains(inv) || !returned.insert(*inv) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Invocation ids with a call but no return (pending invocations).
    #[must_use]
    pub fn pending(&self) -> Vec<InvId> {
        let mut called: BTreeMap<InvId, ()> = BTreeMap::new();
        for a in &self.actions {
            match a {
                Action::Call { inv, .. } => {
                    called.insert(*inv, ());
                }
                Action::Return { inv, .. } => {
                    called.remove(inv);
                }
            }
        }
        called.into_keys().collect()
    }

    /// Extracts one [`InvocationRecord`] per call action, in call order.
    #[must_use]
    pub fn invocations(&self) -> Vec<InvocationRecord> {
        let mut recs: Vec<InvocationRecord> = Vec::new();
        let mut index: BTreeMap<InvId, usize> = BTreeMap::new();
        for a in &self.actions {
            match a {
                Action::Call {
                    inv,
                    pid,
                    obj,
                    method,
                    arg,
                } => {
                    index.insert(*inv, recs.len());
                    recs.push(InvocationRecord {
                        inv: *inv,
                        pid: *pid,
                        obj: *obj,
                        method: *method,
                        arg: arg.clone(),
                        ret: None,
                    });
                }
                Action::Return { inv, val } => {
                    if let Some(&i) = index.get(inv) {
                        recs[i].ret = Some(val.clone());
                    }
                }
            }
        }
        recs
    }

    /// Sequentiality: every call is immediately followed by its matching
    /// return. Sequential histories are the elements of sequential
    /// specifications `Seq`.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        if !self.actions.len().is_multiple_of(2) {
            return false;
        }
        self.actions.chunks(2).all(|c| match c {
            [Action::Call { inv: i1, .. }, Action::Return { inv: i2, .. }] => i1 == i2,
            _ => false,
        })
    }

    /// Projects the history onto the call/return actions of a single object
    /// (`h|O` in Theorem 3.1, locality).
    #[must_use]
    pub fn project(&self, obj: ObjId) -> History {
        let mut owners: BTreeSet<InvId> = BTreeSet::new();
        let mut out = History::new();
        for a in &self.actions {
            match a {
                Action::Call { inv, obj: o, .. } => {
                    if *o == obj {
                        owners.insert(*inv);
                        out.push(a.clone());
                    }
                }
                Action::Return { inv, .. } => {
                    if owners.contains(inv) {
                        out.push(a.clone());
                    }
                }
            }
        }
        out
    }

    /// The object ids mentioned by call actions, in first-use order.
    #[must_use]
    pub fn objects(&self) -> Vec<ObjId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.actions {
            if let Action::Call { obj, .. } = a {
                if seen.insert(*obj) {
                    out.push(*obj);
                }
            }
        }
        out
    }

    /// Returns `true` if `self` is a prefix of `other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &History) -> bool {
        other.actions.len() >= self.actions.len()
            && other.actions[..self.actions.len()] == self.actions[..]
    }

    /// The prefix of the first `n` actions.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> History {
        History {
            actions: self.actions[..n].to_vec(),
        }
    }
}

impl FromIterator<Action> for History {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> History {
        History {
            actions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Action> for History {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Pid;

    fn call(inv: u64, obj: u32, method: MethodId, arg: Val) -> Action {
        Action::Call {
            inv: InvId(inv),
            pid: Pid(0),
            obj: ObjId(obj),
            method,
            arg,
        }
    }

    fn ret(inv: u64, val: Val) -> Action {
        Action::Return {
            inv: InvId(inv),
            val,
        }
    }

    #[test]
    fn well_formedness_rejects_orphan_return() {
        let h: History = vec![ret(0, Val::Nil)].into_iter().collect();
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_duplicate_call() {
        let h: History = vec![
            call(0, 0, MethodId::READ, Val::Nil),
            call(0, 0, MethodId::READ, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_duplicate_return() {
        let h: History = vec![
            call(0, 0, MethodId::READ, Val::Nil),
            ret(0, Val::Nil),
            ret(0, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert!(!h.is_well_formed());
    }

    #[test]
    fn pending_lists_unreturned_invocations() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 0, MethodId::READ, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert_eq!(h.pending(), vec![InvId(0)]);
    }

    #[test]
    fn sequential_detection() {
        let seq: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 0, MethodId::READ, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        assert!(seq.is_sequential());

        let overlapping: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 0, MethodId::READ, Val::Nil),
            ret(0, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        assert!(!overlapping.is_sequential());
        assert!(overlapping.is_well_formed());
    }

    #[test]
    fn projection_keeps_only_target_object() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(0, Val::Nil),
            ret(1, Val::Int(9)),
        ]
        .into_iter()
        .collect();
        let p = h.project(ObjId(1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.actions()[0].inv(), InvId(1));
        assert_eq!(h.objects(), vec![ObjId(0), ObjId(1)]);
    }

    #[test]
    fn prefix_relation() {
        let h: History = vec![call(0, 0, MethodId::WRITE, Val::Int(1)), ret(0, Val::Nil)]
            .into_iter()
            .collect();
        let p = h.prefix(1);
        assert!(p.is_prefix_of(&h));
        assert!(!h.is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
    }

    #[test]
    fn invocation_records_pair_calls_with_returns() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 0, MethodId::READ, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        let recs = h.invocations();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ret, None);
        assert_eq!(recs[1].ret, Some(Val::Int(1)));
        assert_eq!(recs[1].method, MethodId::READ);
    }

    #[test]
    fn display_is_line_per_action() {
        let h: History = vec![call(0, 0, MethodId::WRITE, Val::Int(1)), ret(0, Val::Nil)]
            .into_iter()
            .collect();
        let s = h.to_string();
        assert!(s.contains("call Write(1)_inv0"));
        assert!(s.contains("ret ⊥_inv0"));
    }
}
