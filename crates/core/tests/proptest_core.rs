//! Property-based tests for the core types: exact rational arithmetic, the
//! Theorem 4.2 bound, distributions, and history structure.

use blunt_core::bound::{adversary_advantage, blunting_bound, prob_x_lower_bound};
use blunt_core::history::{Action, History};
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::outcome::Dist;
use blunt_core::ratio::Ratio;
use blunt_core::value::Val;
use proptest::prelude::*;

fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-20i128..=20, 1i128..=20).prop_map(|(n, d)| Ratio::new(n, d))
}

fn probability() -> impl Strategy<Value = Ratio> {
    (0i128..=16, 16i128..=16).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ratio_addition_is_commutative_and_associative(
        a in small_ratio(), b in small_ratio(), c in small_ratio()
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn ratio_multiplication_distributes_over_addition(
        a in small_ratio(), b in small_ratio(), c in small_ratio()
    ) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn ratio_subtraction_inverts_addition(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn ratio_order_is_compatible_with_addition(
        a in small_ratio(), b in small_ratio(), c in small_ratio()
    ) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }

    #[test]
    fn ratio_pow_is_homomorphic(a in small_ratio(), e1 in 0u32..6, e2 in 0u32..6) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn ratio_min_max_bracket(a in small_ratio(), b in small_ratio()) {
        prop_assert!(a.min(b) <= a.max(b));
        prop_assert_eq!(a.min(b) + a.max(b), a + b);
    }

    #[test]
    fn prob_x_bound_is_a_probability_and_monotone_in_k(
        n in 1u32..10, r in 1u32..10, k in 1u32..40
    ) {
        let p = prob_x_lower_bound(n, r, k);
        prop_assert!(p.is_probability());
        prop_assert!(prob_x_lower_bound(n, r, k + 1) >= p);
        prop_assert_eq!(adversary_advantage(n, r, k), p.complement());
    }

    #[test]
    fn blunting_bound_brackets_between_atomic_and_linearizable(
        pa in probability(), delta in probability(),
        n in 1u32..8, r in 1u32..6, k in 1u32..32
    ) {
        // pl = pa + delta·(1 − pa) ∈ [pa, 1].
        let pl = pa + delta * pa.complement();
        let b = blunting_bound(pa, pl, n, r, k);
        prop_assert!(b >= pa, "bound below atomic");
        prop_assert!(b <= pl, "bound above linearizable");
        if k <= r && n >= 2 {
            // With at least one other process the adversary keeps its full
            // advantage while k ≤ r; with n = 1 the exponent n − 1 = 0
            // collapses the bound to the atomic probability regardless.
            prop_assert_eq!(b, pl);
        }
    }

    #[test]
    fn blunting_bound_is_monotone_in_each_argument(
        pa in probability(), delta in probability(),
        n in 1u32..8, r in 1u32..6, k in 1u32..32
    ) {
        let pl = pa + delta * pa.complement();
        let b = blunting_bound(pa, pl, n, r, k);
        prop_assert!(blunting_bound(pa, pl, n, r, k + 1) <= b);
        prop_assert!(blunting_bound(pa, pl, n + 1, r, k) >= b);
        prop_assert!(blunting_bound(pa, pl, n, r + 1, k) >= b);
    }

    #[test]
    fn uniform_distributions_are_proper(vals in prop::collection::vec(0u8..50, 1..20)) {
        let d = Dist::uniform(vals.clone());
        prop_assert!(d.is_proper());
        // The mass of any value is a multiple of 1/len, so its reduced
        // denominator divides len.
        for (_, w) in d.iter() {
            prop_assert_eq!((vals.len() as i128) % w.denom(), 0);
        }
    }

    #[test]
    fn dist_map_preserves_total_mass(vals in prop::collection::vec(0u8..50, 1..20)) {
        let d = Dist::uniform(vals);
        let mapped = d.map(|v| v % 3);
        prop_assert_eq!(mapped.total(), d.total());
    }

    #[test]
    fn complement_probabilities_sum_to_one(p in probability()) {
        prop_assert_eq!(p + p.complement(), Ratio::ONE);
    }
}

fn arbitrary_history() -> impl Strategy<Value = History> {
    // Sequences of (call, maybe-return) over a few invocations/objects.
    prop::collection::vec((0u64..6, 0u32..3, prop::bool::ANY), 0..12).prop_map(|ops| {
        let mut h = History::new();
        let mut called = std::collections::BTreeSet::new();
        let mut returned = std::collections::BTreeSet::new();
        for (inv, obj, do_return) in ops {
            if !called.contains(&inv) {
                h.push(Action::Call {
                    inv: InvId(inv),
                    pid: Pid((inv % 3) as u32),
                    obj: ObjId(obj),
                    method: MethodId::READ,
                    arg: Val::Nil,
                });
                called.insert(inv);
            } else if do_return && !returned.contains(&inv) {
                h.push(Action::Return {
                    inv: InvId(inv),
                    val: Val::Int(inv as i64),
                });
                returned.insert(inv);
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_histories_are_well_formed(h in arbitrary_history()) {
        prop_assert!(h.is_well_formed());
    }

    #[test]
    fn projection_preserves_well_formedness_and_partitions(h in arbitrary_history()) {
        let mut total = 0;
        for obj in h.objects() {
            let p = h.project(obj);
            prop_assert!(p.is_well_formed());
            total += p.len();
        }
        prop_assert_eq!(total, h.len());
    }

    #[test]
    fn prefixes_are_prefixes(h in arbitrary_history(), cut in 0usize..12) {
        let cut = cut.min(h.len());
        let p = h.prefix(cut);
        prop_assert!(p.is_prefix_of(&h));
        prop_assert!(p.is_well_formed());
    }

    #[test]
    fn pending_plus_returned_equals_called(h in arbitrary_history()) {
        let recs = h.invocations();
        let returned = recs.iter().filter(|r| r.ret.is_some()).count();
        prop_assert_eq!(h.pending().len() + returned, recs.len());
    }
}
