//! blunting reproduction: the transport tier.
//!
//! The chaos runtime exercises ABD-style quorum protocols under a
//! seed-deterministic fault injector. This crate is the seam that makes
//! the *transport* swappable without touching the protocol or the fault
//! schedule:
//!
//! - [`Transport`] — the object-safe surface the runtime's server and
//!   client loops drive: send an [`Envelope`], broadcast to a quorum,
//!   flush stragglers, read the deterministic [`TransportStats`] and
//!   [`Coverage`]. The in-process bus (in `blunt-runtime`) and the socket
//!   backends here both implement it.
//! - [`fault`] / [`injector`] — the seed-determined per-link fate streams
//!   and the shared decision core ([`Injector::decide`]) both backends use
//!   bit for bit, so fault counters are a pure function of
//!   `(seed, config, topology)` regardless of transport.
//! - [`frame`] — the length-prefixed, versioned wire format (hand-rolled,
//!   zero dependencies).
//! - [`conn`] / [`pool`] — TCP / Unix-domain streams, per-peer connection
//!   pools with single-redial self-healing, and quorum broadcast fan-out.
//! - [`rpc`] — monotonic frame tags, reply-to-lane routing, and
//!   per-connection duplicate suppression (retransmission-aware dedup).
//! - [`client`] / [`server`] — the two socket endpoints: [`NetClient`]
//!   (the driver process: client threads + monitor, owning the
//!   client→server fault links) and [`NetServer`] (one `chaos serve`
//!   process per server, owning its server→client links).
//!
//! ## Counters
//!
//! The socket tier feeds the `net.*` counter family: `net.frames_sent`,
//! `net.frames_received`, `net.bytes_sent`, `net.bytes_received`,
//! `net.reconnects`, `net.rpc.tag_mismatch_drops`, `net.rpc.dedup_drops`.
//!
//! ## Fault semantics across backends
//!
//! The *decision* (which fate, which counters) is shared and
//! seed-deterministic. The *realization* differs where the medium does:
//! the in-process bus enqueues a `Duplicate` twice, while a socket backend
//! writes the same tagged frame twice and the receiver's dedup window
//! absorbs the copy — exercising the retransmission-tolerance machinery a
//! real stack needs. Drops simply skip the write; reorders and delays are
//! realized at the writing endpoint before frames hit the connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod coverage;
pub mod fault;
pub mod frame;
pub mod injector;
pub mod pool;
pub mod rpc;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetClientCfg, RemoteServer, ServerGoodbye, ServerTelemetry};
pub use conn::{Addr, Listener, Stream};
pub use coverage::{Coverage, LinkCoverage};
pub use fault::{Fate, FaultConfig, FaultConfigError, FaultPlan};
pub use frame::{Frame, FrameError, TaggedEnv, DRIVER_NODE, FRAME_VERSION, MAX_FRAME_LEN};
pub use injector::{Injector, TransportStats};
pub use server::{NetServer, NetServerCfg};
pub use wire::{Envelope, Payload, SpanCtx};

use blunt_abd::msg::AbdMsg;
use blunt_core::ids::Pid;

/// What the chaos runtime's server and client loops drive: any medium that
/// can carry [`Envelope`]s under the seed-determined fault schedule.
///
/// Implementations: the in-process bus (`blunt_runtime::Bus`), the driver
/// endpoint [`NetClient`], and the server endpoint [`NetServer`]. The
/// protocol state machines in `blunt-abd` never see this trait — they are
/// pure step functions — so a transport swap cannot change protocol
/// decisions, only message timing and loss.
pub trait Transport: Send + Sync {
    /// Sends `env`, applying the fault schedule to non-exempt envelopes.
    fn send(&self, env: Envelope);

    /// Sends several envelopes as one logical flush. **Semantically a
    /// batch IS its envelope sequence**: the default forwards to
    /// [`Transport::send`] in order, and every override must preserve
    /// that contract — fault fates are drawn per logical envelope, in
    /// order, exactly as the loop would, so batching can never perturb
    /// the seed-determined schedule, stats, or coverage. Socket backends
    /// override this to pack the surviving envelopes of each destination
    /// into a single `EnvBatch` frame, amortizing syscall and framing
    /// overhead across a quorum round.
    fn send_batch(&self, envs: Vec<Envelope>) {
        for env in envs {
            self.send(env);
        }
    }

    /// Broadcasts the ABD message `msg` from `src` to every pid in `dsts`
    /// (a quorum round's fan-out).
    fn broadcast(&self, src: Pid, dsts: &[Pid], msg: &AbdMsg, exempt: bool) {
        self.broadcast_span(src, dsts, msg, exempt, SpanCtx::NONE);
    }

    /// [`Transport::broadcast`] with every envelope stamped with trace
    /// context `span`. The span is pure data (no transport branches on
    /// it), so span-stamped broadcasts consume exactly the same
    /// fault-schedule indices as unstamped ones.
    fn broadcast_span(&self, src: Pid, dsts: &[Pid], msg: &AbdMsg, exempt: bool, span: SpanCtx) {
        for &dst in dsts {
            self.send(Envelope::abd(src, dst, msg.clone(), exempt).with_span(span));
        }
    }

    /// Marks the start of a new operation by `client`. Socket transports
    /// retire the client's outstanding reply routes here; the in-process
    /// bus needs no such bookkeeping.
    fn on_op_start(&self, client: Pid) {
        let _ = client;
    }

    /// Announces that the calling server process just suffered an amnesia
    /// crash: any *volatile* transport-side state (notably per-connection
    /// dedup windows) must be forgotten, exactly like the server's own
    /// register state. The in-process bus keeps no such state — the
    /// default is a no-op — but [`NetServer`] resets its connections'
    /// dedup windows so the first retransmitted pre-crash tag is not
    /// silently swallowed after recovery.
    fn on_crash(&self) {}

    /// Releases reorder hold-backs and drains delayers — end of run,
    /// nothing will overtake them anymore.
    fn flush(&self);

    /// The deterministic fault counters so far.
    fn stats(&self) -> TransportStats;

    /// The fault-schedule coverage so far.
    fn coverage(&self) -> Coverage;
}
