//! The transport-agnostic message envelope and its payload kinds.
//!
//! An [`Envelope`] is what every [`Transport`](crate::Transport) carries:
//! the directed link `(src, dst)`, a [`Payload`], the *exemption* bit that
//! routes retransmissions and recovery traffic around the fault injector,
//! and a runtime-local request/reply correlation tag used by socket
//! transports (the in-process bus ignores it and it never perturbs the
//! fault schedule).

use blunt_abd::msg::AbdMsg;
use blunt_abd::ts::Ts;
use blunt_core::ids::{ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::flight;

/// The compact trace context stamped on every envelope: which client
/// operation this message belongs to, and which hop of the exchange it is.
///
/// Spans make server-side flight events attributable to the originating
/// op across process boundaries: the driver stamps requests at broadcast
/// time, frame v2 carries the context over the wire, and servers echo it
/// on their replies — so a merged flight dump can reconstruct an op's
/// full causal interval (client queue → wire → server ack → quorum).
///
/// The span is **pure data**: no transport, injector, or step machine
/// branches on it, so stamping spans adds zero schedule perturbation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCtx {
    /// The originating client's pid (`u32::MAX` = no span).
    pub client: u32,
    /// The client-unique invocation id of the op ([`blunt_core::ids::InvId`]).
    pub op: u64,
    /// Which hop of the exchange: [`SpanCtx::HOP_REQUEST`] (client →
    /// server) or [`SpanCtx::HOP_REPLY`] (server → client); 0 on
    /// [`SpanCtx::NONE`].
    pub hop: u8,
}

impl SpanCtx {
    /// No span: control traffic, recovery transfer, anything not tied to a
    /// client operation.
    pub const NONE: SpanCtx = SpanCtx {
        client: u32::MAX,
        op: 0,
        hop: 0,
    };

    /// Hop kind: a client-originated request leg (query/update broadcast).
    pub const HOP_REQUEST: u8 = 1;
    /// Hop kind: a server's reply leg (reply/ack back to the client).
    pub const HOP_REPLY: u8 = 2;

    /// A request-hop span for client `client`'s invocation `op`.
    #[must_use]
    pub fn request(client: u32, op: u64) -> SpanCtx {
        SpanCtx {
            client,
            op,
            hop: SpanCtx::HOP_REQUEST,
        }
    }

    /// `true` iff this is [`SpanCtx::NONE`].
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.client == u32::MAX
    }

    /// The same span re-stamped as the reply hop (what a server puts on
    /// the response it sends back). [`SpanCtx::NONE`] stays `NONE`.
    #[must_use]
    pub fn reply(self) -> SpanCtx {
        if self.is_none() {
            SpanCtx::NONE
        } else {
            SpanCtx {
                hop: SpanCtx::HOP_REPLY,
                ..self
            }
        }
    }

    /// The packed flight-recorder span word for this context (see
    /// [`flight::pack_span`]); [`flight::SPAN_NONE`] for [`SpanCtx::NONE`].
    #[must_use]
    pub fn flight_word(&self) -> u64 {
        if self.is_none() {
            flight::SPAN_NONE
        } else {
            flight::pack_span(self.client, self.op)
        }
    }
}

/// What an [`Envelope`] carries: protocol traffic or a runtime control
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// An ABD protocol message.
    Abd(AbdMsg),
    /// The amnesia signal: "your crash window `window` just ended — lose
    /// your volatile state and recover before serving". Emitted by the
    /// transport's injector itself at window exit (exempt, at most once per
    /// `(server, window)` pair); never crosses the injector.
    Crash {
        /// The crash cycle this signal belongs to.
        window: u64,
    },
    /// Recovery state transfer, mirroring the ABD query: "send me your
    /// current per-register `(value, timestamp)` pairs". Always exempt.
    StateQuery {
        /// Exchange identifier scoped to the recovering server.
        sn: u64,
    },
    /// A peer's answer to a [`Payload::StateQuery`]: every materialized
    /// register's `(obj, value, timestamp)`, in `ObjId` order. A
    /// single-register run carries a one-entry (or, before any write,
    /// empty) snapshot. Always exempt.
    StateReply {
        /// The exchange this reply answers.
        sn: u64,
        /// The peer's full store snapshot, `ObjId`-ordered.
        snap: Vec<(ObjId, Val, Ts)>,
    },
}

/// One message in flight on a transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub src: Pid,
    /// Destination node.
    pub dst: Pid,
    /// Protocol payload.
    pub msg: Payload,
    /// Retransmissions (and responses to them) bypass the fault injector
    /// and consume no fault-schedule indices, so timing-dependent retry
    /// counts cannot perturb the seed-determined schedule. Recovery
    /// traffic ([`Payload::Crash`]/[`Payload::StateQuery`]/
    /// [`Payload::StateReply`]) is exempt for the same reason.
    pub exempt: bool,
    /// Request/reply correlation for socket transports. On envelopes
    /// *delivered* by a socket transport this is the tag of the frame that
    /// carried them; on envelopes *sent* it is the tag of the inbound frame
    /// this one answers (`0` = unsolicited). Runtime-local: the field never
    /// appears inside the serialized envelope — the frame header carries
    /// it — and the in-process bus ignores it entirely.
    pub reply_to: u64,
    /// The trace context of the client operation this message belongs to
    /// ([`SpanCtx::NONE`] for control/recovery traffic). Serialized in
    /// frame v2 `Env` bodies so server processes can attribute their
    /// flight events to the originating op; pure data on the in-process
    /// path.
    pub span: SpanCtx,
}

impl Envelope {
    /// An envelope carrying an ABD protocol message (unsolicited:
    /// `reply_to = 0`, no span).
    #[must_use]
    pub fn abd(src: Pid, dst: Pid, msg: AbdMsg, exempt: bool) -> Envelope {
        Envelope {
            src,
            dst,
            msg: Payload::Abd(msg),
            exempt,
            reply_to: 0,
            span: SpanCtx::NONE,
        }
    }

    /// The same envelope marked as answering the inbound frame tagged `re`.
    /// Socket transports route it back to the requester by that tag; the
    /// in-process bus ignores it.
    #[must_use]
    pub fn in_reply_to(mut self, re: u64) -> Envelope {
        self.reply_to = re;
        self
    }

    /// The same envelope stamped with trace context `span`.
    #[must_use]
    pub fn with_span(mut self, span: SpanCtx) -> Envelope {
        self.span = span;
        self
    }
}

impl Payload {
    /// The packed flight-recorder label for this payload: message-kind code
    /// plus its sequence number / window (see [`flight::pack_msg`]).
    #[must_use]
    pub fn flight_label(&self) -> u64 {
        match self {
            Payload::Abd(AbdMsg::Query { sn, .. }) => {
                flight::pack_msg(flight::MSG_QUERY, u64::from(*sn))
            }
            Payload::Abd(AbdMsg::Reply { sn, .. }) => {
                flight::pack_msg(flight::MSG_REPLY, u64::from(*sn))
            }
            Payload::Abd(AbdMsg::Update { sn, .. }) => {
                flight::pack_msg(flight::MSG_UPDATE, u64::from(*sn))
            }
            Payload::Abd(AbdMsg::Ack { sn, .. }) => {
                flight::pack_msg(flight::MSG_ACK, u64::from(*sn))
            }
            Payload::Crash { window } => flight::pack_msg(flight::MSG_CRASH, *window),
            Payload::StateQuery { sn } => flight::pack_msg(flight::MSG_STATE_QUERY, *sn),
            Payload::StateReply { sn, .. } => flight::pack_msg(flight::MSG_STATE_REPLY, *sn),
        }
    }
}
