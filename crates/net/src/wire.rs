//! The transport-agnostic message envelope and its payload kinds.
//!
//! An [`Envelope`] is what every [`Transport`](crate::Transport) carries:
//! the directed link `(src, dst)`, a [`Payload`], the *exemption* bit that
//! routes retransmissions and recovery traffic around the fault injector,
//! and a runtime-local request/reply correlation tag used by socket
//! transports (the in-process bus ignores it and it never perturbs the
//! fault schedule).

use blunt_abd::msg::AbdMsg;
use blunt_abd::ts::Ts;
use blunt_core::ids::Pid;
use blunt_core::value::Val;
use blunt_obs::flight;

/// What an [`Envelope`] carries: protocol traffic or a runtime control
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// An ABD protocol message.
    Abd(AbdMsg),
    /// The amnesia signal: "your crash window `window` just ended — lose
    /// your volatile state and recover before serving". Emitted by the
    /// transport's injector itself at window exit (exempt, at most once per
    /// `(server, window)` pair); never crosses the injector.
    Crash {
        /// The crash cycle this signal belongs to.
        window: u64,
    },
    /// Recovery state transfer, mirroring the ABD query: "send me your
    /// current `(value, timestamp)`". Always exempt.
    StateQuery {
        /// Exchange identifier scoped to the recovering server.
        sn: u64,
    },
    /// A peer's answer to a [`Payload::StateQuery`]. Always exempt.
    StateReply {
        /// The exchange this reply answers.
        sn: u64,
        /// The peer's current value.
        val: Val,
        /// Its timestamp.
        ts: Ts,
    },
}

/// One message in flight on a transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub src: Pid,
    /// Destination node.
    pub dst: Pid,
    /// Protocol payload.
    pub msg: Payload,
    /// Retransmissions (and responses to them) bypass the fault injector
    /// and consume no fault-schedule indices, so timing-dependent retry
    /// counts cannot perturb the seed-determined schedule. Recovery
    /// traffic ([`Payload::Crash`]/[`Payload::StateQuery`]/
    /// [`Payload::StateReply`]) is exempt for the same reason.
    pub exempt: bool,
    /// Request/reply correlation for socket transports. On envelopes
    /// *delivered* by a socket transport this is the tag of the frame that
    /// carried them; on envelopes *sent* it is the tag of the inbound frame
    /// this one answers (`0` = unsolicited). Runtime-local: the field never
    /// appears inside the serialized envelope — the frame header carries
    /// it — and the in-process bus ignores it entirely.
    pub reply_to: u64,
}

impl Envelope {
    /// An envelope carrying an ABD protocol message (unsolicited:
    /// `reply_to = 0`).
    #[must_use]
    pub fn abd(src: Pid, dst: Pid, msg: AbdMsg, exempt: bool) -> Envelope {
        Envelope {
            src,
            dst,
            msg: Payload::Abd(msg),
            exempt,
            reply_to: 0,
        }
    }

    /// The same envelope marked as answering the inbound frame tagged `re`.
    /// Socket transports route it back to the requester by that tag; the
    /// in-process bus ignores it.
    #[must_use]
    pub fn in_reply_to(mut self, re: u64) -> Envelope {
        self.reply_to = re;
        self
    }
}

impl Payload {
    /// The packed flight-recorder label for this payload: message-kind code
    /// plus its sequence number / window (see [`flight::pack_msg`]).
    #[must_use]
    pub fn flight_label(&self) -> u64 {
        match self {
            Payload::Abd(AbdMsg::Query { sn, .. }) => {
                flight::pack_msg(flight::MSG_QUERY, u64::from(*sn))
            }
            Payload::Abd(AbdMsg::Reply { sn, .. }) => {
                flight::pack_msg(flight::MSG_REPLY, u64::from(*sn))
            }
            Payload::Abd(AbdMsg::Update { sn, .. }) => {
                flight::pack_msg(flight::MSG_UPDATE, u64::from(*sn))
            }
            Payload::Abd(AbdMsg::Ack { sn, .. }) => {
                flight::pack_msg(flight::MSG_ACK, u64::from(*sn))
            }
            Payload::Crash { window } => flight::pack_msg(flight::MSG_CRASH, *window),
            Payload::StateQuery { sn } => flight::pack_msg(flight::MSG_STATE_QUERY, *sn),
            Payload::StateReply { sn, .. } => flight::pack_msg(flight::MSG_STATE_REPLY, *sn),
        }
    }
}
