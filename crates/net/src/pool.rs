//! Per-peer connection pools and quorum broadcast fan-out.
//!
//! A [`ConnectionPool`] owns one lazily-dialed, mutex-guarded connection
//! per peer. On a write error it drops the connection and redials once
//! (counted as `net.reconnects`); a second failure surfaces to the caller,
//! which treats the frame as lost — indistinguishable from a dropped
//! message, which the retransmission layer above already tolerates. Every
//! fresh connection replays the pool's `Hello` frame and hands a reader
//! handle to the `on_connect` callback so the owner can spawn its receive
//! loop.
//!
//! [`BroadcastPool`] is the quorum-facing view: fan one logical message out
//! to every peer, building a distinct tagged frame per destination.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use crate::conn::{Addr, Stream};
use crate::frame::{write_frame, Frame};

/// How long a fresh dial retries connection refusals before giving up —
/// generous enough to cover servers that are still binding at startup.
pub const DIAL_RETRY_WINDOW: Duration = Duration::from_secs(10);

/// One lazily-dialed outbound connection per peer, self-healing across a
/// single redial per write.
pub struct ConnectionPool {
    peers: Vec<Addr>,
    slots: Vec<Mutex<Option<Stream>>>,
    /// Builds the session handshake sent first on every (re)connected
    /// stream. A closure rather than a stored frame so dialers that sample
    /// a clock into their `Hello` (clock-offset estimation) get a fresh
    /// timestamp per dial, not the stale one from pool construction.
    hello: Box<dyn Fn() -> Frame + Send + Sync>,
    /// Called with a cloned reader handle for each fresh connection.
    on_connect: Box<dyn Fn(usize, Stream) + Send + Sync>,
}

impl ConnectionPool {
    /// A pool dialing `peers`, announcing itself with `hello()` on each
    /// fresh connection, and handing each fresh connection's read half to
    /// `on_connect(peer_index, reader)`.
    pub fn new(
        peers: Vec<Addr>,
        hello: impl Fn() -> Frame + Send + Sync + 'static,
        on_connect: impl Fn(usize, Stream) + Send + Sync + 'static,
    ) -> ConnectionPool {
        let slots = peers.iter().map(|_| Mutex::new(None)).collect();
        ConnectionPool {
            peers,
            slots,
            hello: Box::new(hello),
            on_connect: Box::new(on_connect),
        }
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the pool has no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    fn dial(&self, peer: usize) -> std::io::Result<Stream> {
        let mut s = self.peers[peer].connect_retry(DIAL_RETRY_WINDOW)?;
        write_frame(&mut s, &(self.hello)())?;
        s.flush()?;
        (self.on_connect)(peer, s.try_clone()?);
        Ok(s)
    }

    /// Writes `frame` to `peer`, dialing on first use and redialing once on
    /// a write failure (`net.reconnects`).
    ///
    /// # Errors
    ///
    /// The I/O error of the second attempt; the connection slot is left
    /// empty so the next write dials fresh. Callers treat the frame as
    /// lost — the retransmission layer above absorbs it.
    pub fn send(&self, peer: usize, frame: &Frame) -> std::io::Result<()> {
        let mut slot = self.slots[peer].lock().expect("pool slot lock");
        if slot.is_none() {
            *slot = Some(self.dial(peer)?);
        }
        let first = write_frame(slot.as_mut().expect("dialed above"), frame);
        if first.is_ok() {
            return Ok(());
        }
        // One reconnect attempt: the peer may have restarted (crash
        // recovery) or the connection idled out.
        *slot = None;
        blunt_obs::static_counter!("net.reconnects").inc();
        let mut fresh = self.dial(peer)?;
        match write_frame(&mut fresh, frame) {
            Ok(()) => {
                *slot = Some(fresh);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// Quorum fan-out over a [`ConnectionPool`]: one distinct tagged frame per
/// destination.
pub struct BroadcastPool {
    pool: ConnectionPool,
}

impl BroadcastPool {
    /// Wraps `pool` for broadcasting.
    #[must_use]
    pub fn new(pool: ConnectionPool) -> BroadcastPool {
        BroadcastPool { pool }
    }

    /// The underlying pool, for unicast sends.
    #[must_use]
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// Sends `make(peer)`'s frame to every peer. Per-peer send failures are
    /// swallowed (the frame is "lost"; retransmission recovers) — a quorum
    /// protocol must not let one dead peer poison the whole round.
    pub fn broadcast(&self, mut make: impl FnMut(usize) -> Frame) {
        for peer in 0..self.pool.len() {
            let frame = make(peer);
            let _ = self.pool.send(peer, &frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;
    use std::sync::mpsc;

    fn tmp_sock(name: &str) -> Addr {
        let dir = std::env::temp_dir().join(format!("blunt-net-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Addr::Uds(dir.join(name))
    }

    #[test]
    fn pool_dials_lazily_sends_hello_first_and_reconnects_after_peer_restart() {
        let addr = tmp_sock("p0.sock");
        let listener = addr.listen().unwrap();
        let (connected_tx, connected_rx) = mpsc::channel();
        let pool = ConnectionPool::new(
            vec![addr.clone()],
            || Frame::Hello { node: 7, t_us: 0 },
            move |peer, _reader| connected_tx.send(peer).unwrap(),
        );
        pool.send(0, &Frame::Shutdown).unwrap();
        assert_eq!(connected_rx.recv().unwrap(), 0, "on_connect fired");
        let mut conn = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Some(Frame::Hello { node: 7, t_us: 0 })
        );
        assert_eq!(read_frame(&mut conn).unwrap(), Some(Frame::Shutdown));
        // Simulate a peer restart: close the accepted side, rebind, and
        // keep writing until the pool notices the dead connection and
        // redials (closure detection may take one buffered write).
        drop(conn);
        drop(listener);
        let listener = addr.listen().unwrap();
        for _ in 0..50 {
            if pool.send(0, &Frame::Shutdown).is_ok() && connected_rx.try_recv().is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut conn = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Some(Frame::Hello { node: 7, t_us: 0 }),
            "reconnected stream re-announces itself"
        );
    }

    #[test]
    fn broadcast_reaches_every_peer_with_its_own_frame() {
        let addrs = [tmp_sock("b0.sock"), tmp_sock("b1.sock")];
        let listeners: Vec<_> = addrs.iter().map(|a| a.listen().unwrap()).collect();
        let pool = BroadcastPool::new(ConnectionPool::new(
            addrs.to_vec(),
            || Frame::Hello { node: 1, t_us: 0 },
            |_, _| {},
        ));
        pool.broadcast(|peer| Frame::Hello {
            node: peer as u32 + 100,
            t_us: 0,
        });
        for (i, l) in listeners.iter().enumerate() {
            let mut conn = l.accept().unwrap();
            assert_eq!(
                read_frame(&mut conn).unwrap(),
                Some(Frame::Hello { node: 1, t_us: 0 })
            );
            assert_eq!(
                read_frame(&mut conn).unwrap(),
                Some(Frame::Hello {
                    node: i as u32 + 100,
                    t_us: 0
                })
            );
        }
    }
}
