//! The wire format: length-prefixed, versioned frames with a hand-rolled
//! zero-dependency encoding.
//!
//! ```text
//! frame     := len:u32le body
//! body      := version:u8 kind:u8 rest
//! kind 0    := Hello    node:u32le t_us:u64le
//! kind 1    := Env      tag:u64le re:u64le src:u32le dst:u32le exempt:u8
//!                       span payload
//! kind 2    := Shutdown
//! kind 3    := Goodbye  node:u32le crashes:u64le recoveries:u64le
//!                       wal_lost:u64le wal_replayed:u64le
//!                       fsync_p99_us:u64le dump_len:u32le dump:utf8
//! kind 4    := HelloAck node:u32le echo_t:u64le t_us:u64le
//! kind 5    := Telemetry node:u32le recoveries:u64le crashes:u64le
//!                       fsync_count:u64le fsync_p99_us:u64le
//!                       span_events:u64le events:u64le
//! kind 6    := EnvBatch n:u32le entry*n
//! entry     := tag:u64le re:u64le src:u32le dst:u32le exempt:u8
//!              span payload
//! span      := client:u32le op:u64le hop:u8
//! payload   := 0 obj:u32le sn:u32le                 (Abd Query)
//!            | 1 obj:u32le sn:u32le ts val          (Abd Reply)
//!            | 2 obj:u32le sn:u32le ts val          (Abd Update)
//!            | 3 obj:u32le sn:u32le                 (Abd Ack)
//!            | 4 window:u64le                       (Crash)
//!            | 5 sn:u64le                           (StateQuery)
//!            | 6 sn:u64le n:u32le snap*n            (StateReply)
//! snap      := obj:u32le ts val
//! ts        := t:i64le pid:u32le
//! val       := 0 | 1 v:i64le | 2 val val | 3 n:u32le val*n
//! ```
//!
//! `len` counts the body only and is capped at [`MAX_FRAME_LEN`]; a longer
//! frame is rejected on both encode and decode, bounding a reader's
//! allocation. Decoding is strict: unknown versions/kinds/tags, truncated
//! bodies, trailing bytes, and `Val` nesting past [`MAX_VAL_DEPTH`] are all
//! errors — a corrupt or hostile peer can kill its own connection, never
//! the process.
//!
//! The `tag`/`re` pair in `Env` frames is the RPC correlation header (see
//! [`crate::rpc`]): `tag` is unique per sent frame within a process, `re`
//! names the inbound frame this one answers (`0` = unsolicited). It is
//! deliberately *outside* the envelope payload: correlation is a transport
//! concern, and the in-process bus never materializes it.
//!
//! Version 2 added the distributed-tracing plane: the `span` trace context
//! on every `Env` (see [`crate::wire::SpanCtx`]), clock-sampling `Hello` /
//! `HelloAck` handshakes for cross-process clock-offset estimation, the
//! periodic server→driver `Telemetry` frame, and the bounded flight-dump
//! JSONL piggybacked on `Goodbye`.
//!
//! Version 3 added the keyed-store plane: `StateReply` carries a full
//! multi-register snapshot instead of a single `(val, ts)` pair, and the
//! `EnvBatch` kind carries several tagged envelopes in one frame for
//! batched quorum I/O. An `EnvBatch` is *transport amortization only*: it
//! decodes to exactly the envelope sequence its entries would produce as
//! individual `Env` frames, and fault fates are drawn per logical envelope
//! before batching, so the fault schedule cannot tell the difference.

use std::fmt;
use std::io::{self, Read, Write};

use blunt_abd::msg::AbdMsg;
use blunt_abd::ts::Ts;
use blunt_core::ids::{ObjId, Pid};
use blunt_core::value::Val;

use crate::wire::{Envelope, Payload, SpanCtx};

/// The wire-format version this build speaks. A peer announcing any other
/// version is rejected with [`FrameError::BadVersion`].
pub const FRAME_VERSION: u8 = 3;

/// Upper bound on an encoded frame body, in bytes. Bounds the allocation a
/// reader performs on behalf of a peer.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Maximum [`Val`] nesting depth a decoder will follow (`Pair`/`Tuple`
/// recursion); deeper structures are rejected rather than risking a stack
/// overflow on hostile input.
pub const MAX_VAL_DEPTH: u32 = 64;

/// The sentinel `Hello` node id announcing the client driver (servers are
/// `0..servers`, so the driver takes the top of the id space).
pub const DRIVER_NODE: u32 = u32::MAX;

/// One tagged envelope inside a [`Frame::EnvBatch`]: the same
/// `tag`/`re`/`env` triple a [`Frame::Env`] carries, minus the per-frame
/// framing overhead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggedEnv {
    /// This entry's own tag (unique per sent frame within a process).
    pub tag: u64,
    /// The tag of the inbound frame this entry answers; 0 = unsolicited.
    pub re: u64,
    /// The envelope itself.
    pub env: Envelope,
}

/// One frame on a connection: a session handshake, a tagged envelope, or a
/// shutdown-protocol control message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: who is dialing. `node` is a server
    /// pid or [`DRIVER_NODE`]; the accepting side uses it to register the
    /// connection as the route back to that node.
    Hello {
        /// The dialing node's id.
        node: u32,
        /// The dialer's flight-recorder clock at send time (µs), echoed in
        /// [`Frame::HelloAck`] for clock-offset estimation. `0` from
        /// dialers that don't estimate offsets (server↔server peers).
        t_us: u64,
    },
    /// A protocol envelope with its RPC correlation header.
    Env {
        /// This frame's own tag: unique per sent frame within a process,
        /// never 0. Receivers use it for duplicate suppression and echo it
        /// as `re` in replies.
        tag: u64,
        /// The tag of the inbound frame this one answers; 0 = unsolicited.
        re: u64,
        /// The envelope itself ([`Envelope::reply_to`] is *not* serialized —
        /// the header's `tag`/`re` carry correlation on the wire).
        env: Envelope,
    },
    /// The driver is done: finish pending work, send a [`Frame::Goodbye`],
    /// and exit.
    Shutdown,
    /// A server's parting stats, aggregated into the driver's run report.
    Goodbye {
        /// The departing server's pid.
        node: u32,
        /// Crash events it processed.
        crashes: u64,
        /// Recoveries it completed.
        recoveries: u64,
        /// WAL records lost to crashes (timing-dependent).
        wal_lost: u64,
        /// WAL records replayed during recoveries (timing-dependent).
        wal_replayed: u64,
        /// p99 WAL fsync latency in µs (timing-dependent; 0 when no fsync
        /// was timed).
        fsync_p99_us: u64,
        /// A bounded flight-dump JSONL (schema v2, the server's most recent
        /// events) piggybacked for the driver's merged cross-process dump;
        /// empty when the server has nothing to report.
        dump: String,
    },
    /// The accepting side's reply to a driver [`Frame::Hello`]: both clock
    /// samples the driver needs to estimate the server-clock offset
    /// (Cristian's algorithm: `offset ≈ t_us − (echo_t + rtt/2)`).
    HelloAck {
        /// The replying server's pid.
        node: u32,
        /// The `t_us` of the `Hello` being answered (the driver's send
        /// clock, echoed so the driver can compute the round trip).
        echo_t: u64,
        /// The server's flight-recorder clock when it sent this ack (µs).
        t_us: u64,
    },
    /// A server's periodic in-run telemetry snapshot (server → driver,
    /// cumulative since start; outside the fault schedule). Feeds the
    /// driver's `--watch` line and survives as last-known state if the
    /// server dies before its `Goodbye`.
    Telemetry {
        /// The reporting server's pid.
        node: u32,
        /// Recoveries completed so far.
        recoveries: u64,
        /// Crash events processed so far.
        crashes: u64,
        /// WAL fsyncs timed so far.
        fsync_count: u64,
        /// p99 WAL fsync latency in µs so far (0 when no fsync was timed).
        fsync_p99_us: u64,
        /// Flight events recorded so far that carry a span (attributable
        /// to a client op).
        span_events: u64,
        /// Flight events recorded so far in total.
        events: u64,
    },
    /// Several tagged envelopes in one frame: the batched-quorum-I/O
    /// amortization. Semantically identical to sending each entry as its
    /// own [`Frame::Env`] in order — receivers unpack and process entries
    /// sequentially, and the sender draws fault fates per logical envelope
    /// *before* packing, so batching never perturbs the fault schedule.
    EnvBatch {
        /// The batched entries, in send order.
        entries: Vec<TaggedEnv>,
    },
}

/// Why a frame failed to encode or decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The body ended before the structure it promised.
    Truncated,
    /// The body is longer than [`MAX_FRAME_LEN`].
    TooLarge {
        /// The offending length.
        len: usize,
    },
    /// The version byte is not [`FRAME_VERSION`].
    BadVersion(u8),
    /// The frame kind byte is unknown.
    BadKind(u8),
    /// A payload or value tag byte is unknown.
    BadTag(u8),
    /// Decoded bytes were left over after the frame's structure ended.
    Trailing {
        /// How many bytes remained.
        extra: usize,
    },
    /// A `Val` nested deeper than [`MAX_VAL_DEPTH`].
    TooDeep,
    /// A string field (the `Goodbye` dump) was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame body truncated"),
            FrameError::TooLarge { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            FrameError::BadVersion(v) => {
                write!(f, "frame version {v} (this build speaks {FRAME_VERSION})")
            }
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadTag(t) => write!(f, "unknown payload/value tag {t}"),
            FrameError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after the frame body")
            }
            FrameError::TooDeep => {
                write!(f, "value nesting exceeds depth {MAX_VAL_DEPTH}")
            }
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_ts(out: &mut Vec<u8>, ts: Ts) {
    out.extend_from_slice(&ts.t.to_le_bytes());
    put_u32(out, ts.pid);
}

fn put_span(out: &mut Vec<u8>, span: SpanCtx) {
    put_u32(out, span.client);
    put_u64(out, span.op);
    out.push(span.hop);
}

fn put_val(out: &mut Vec<u8>, v: &Val) {
    match v {
        Val::Nil => out.push(0),
        Val::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Val::Pair(p) => {
            out.push(2);
            put_val(out, &p.0);
            put_val(out, &p.1);
        }
        Val::Tuple(items) => {
            out.push(3);
            put_u32(out, items.len() as u32);
            for item in items {
                put_val(out, item);
            }
        }
    }
}

fn put_payload(out: &mut Vec<u8>, p: &Payload) {
    match p {
        Payload::Abd(AbdMsg::Query { obj, sn }) => {
            out.push(0);
            put_u32(out, obj.0);
            put_u32(out, *sn);
        }
        Payload::Abd(AbdMsg::Reply { obj, sn, val, ts }) => {
            out.push(1);
            put_u32(out, obj.0);
            put_u32(out, *sn);
            put_ts(out, *ts);
            put_val(out, val);
        }
        Payload::Abd(AbdMsg::Update { obj, sn, val, ts }) => {
            out.push(2);
            put_u32(out, obj.0);
            put_u32(out, *sn);
            put_ts(out, *ts);
            put_val(out, val);
        }
        Payload::Abd(AbdMsg::Ack { obj, sn }) => {
            out.push(3);
            put_u32(out, obj.0);
            put_u32(out, *sn);
        }
        Payload::Crash { window } => {
            out.push(4);
            put_u64(out, *window);
        }
        Payload::StateQuery { sn } => {
            out.push(5);
            put_u64(out, *sn);
        }
        Payload::StateReply { sn, snap } => {
            out.push(6);
            put_u64(out, *sn);
            put_u32(out, snap.len() as u32);
            for (obj, val, ts) in snap {
                put_u32(out, obj.0);
                put_ts(out, *ts);
                put_val(out, val);
            }
        }
    }
}

fn put_tagged_env(out: &mut Vec<u8>, tag: u64, re: u64, env: &Envelope) {
    put_u64(out, tag);
    put_u64(out, re);
    put_u32(out, env.src.0);
    put_u32(out, env.dst.0);
    out.push(u8::from(env.exempt));
    put_span(out, env.span);
    put_payload(out, &env.msg);
}

/// A strict little-endian cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.at + n > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn ts(&mut self) -> Result<Ts, FrameError> {
        let t = self.i64()?;
        let pid = self.u32()?;
        Ok(Ts { t, pid })
    }

    fn span(&mut self) -> Result<SpanCtx, FrameError> {
        let client = self.u32()?;
        let op = self.u64()?;
        let hop = self.u8()?;
        Ok(SpanCtx { client, op, hop })
    }

    /// A `u32le`-length-prefixed UTF-8 string. The body cap bounds the
    /// claimed length; invalid UTF-8 is [`FrameError::BadUtf8`].
    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn val(&mut self, depth: u32) -> Result<Val, FrameError> {
        if depth > MAX_VAL_DEPTH {
            return Err(FrameError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Val::Nil),
            1 => Ok(Val::Int(self.i64()?)),
            2 => {
                let a = self.val(depth + 1)?;
                let b = self.val(depth + 1)?;
                Ok(Val::Pair(Box::new((a, b))))
            }
            3 => {
                let n = self.u32()? as usize;
                // No preallocation by the peer's claimed length: the body
                // cap bounds the real size, push grows as elements decode.
                let mut items = Vec::new();
                for _ in 0..n {
                    items.push(self.val(depth + 1)?);
                }
                Ok(Val::Tuple(items))
            }
            t => Err(FrameError::BadTag(t)),
        }
    }

    fn payload(&mut self) -> Result<Payload, FrameError> {
        match self.u8()? {
            0 => Ok(Payload::Abd(AbdMsg::Query {
                obj: ObjId(self.u32()?),
                sn: self.u32()?,
            })),
            1 => {
                let obj = ObjId(self.u32()?);
                let sn = self.u32()?;
                let ts = self.ts()?;
                let val = self.val(0)?;
                Ok(Payload::Abd(AbdMsg::Reply { obj, sn, val, ts }))
            }
            2 => {
                let obj = ObjId(self.u32()?);
                let sn = self.u32()?;
                let ts = self.ts()?;
                let val = self.val(0)?;
                Ok(Payload::Abd(AbdMsg::Update { obj, sn, val, ts }))
            }
            3 => Ok(Payload::Abd(AbdMsg::Ack {
                obj: ObjId(self.u32()?),
                sn: self.u32()?,
            })),
            4 => Ok(Payload::Crash {
                window: self.u64()?,
            }),
            5 => Ok(Payload::StateQuery { sn: self.u64()? }),
            6 => {
                let sn = self.u64()?;
                let n = self.u32()? as usize;
                // As with Val::Tuple: no preallocation by the peer's
                // claimed length — the body cap bounds the real size.
                let mut snap = Vec::new();
                for _ in 0..n {
                    let obj = ObjId(self.u32()?);
                    let ts = self.ts()?;
                    let val = self.val(0)?;
                    snap.push((obj, val, ts));
                }
                Ok(Payload::StateReply { sn, snap })
            }
            t => Err(FrameError::BadTag(t)),
        }
    }

    fn tagged_env(&mut self) -> Result<TaggedEnv, FrameError> {
        let tag = self.u64()?;
        let re = self.u64()?;
        let src = Pid(self.u32()?);
        let dst = Pid(self.u32()?);
        let exempt = self.u8()? != 0;
        let span = self.span()?;
        let msg = self.payload()?;
        Ok(TaggedEnv {
            tag,
            re,
            env: Envelope {
                src,
                dst,
                msg,
                exempt,
                reply_to: 0,
                span,
            },
        })
    }
}

impl Frame {
    /// Encodes the frame as `len:u32le` + body, ready to write.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the body exceeds [`MAX_FRAME_LEN`].
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut out = vec![0u8; 4];
        out.push(FRAME_VERSION);
        match self {
            Frame::Hello { node, t_us } => {
                out.push(0);
                put_u32(&mut out, *node);
                put_u64(&mut out, *t_us);
            }
            Frame::Env { tag, re, env } => {
                out.push(1);
                put_tagged_env(&mut out, *tag, *re, env);
            }
            Frame::Shutdown => out.push(2),
            Frame::Goodbye {
                node,
                crashes,
                recoveries,
                wal_lost,
                wal_replayed,
                fsync_p99_us,
                dump,
            } => {
                out.push(3);
                put_u32(&mut out, *node);
                put_u64(&mut out, *crashes);
                put_u64(&mut out, *recoveries);
                put_u64(&mut out, *wal_lost);
                put_u64(&mut out, *wal_replayed);
                put_u64(&mut out, *fsync_p99_us);
                put_u32(&mut out, dump.len() as u32);
                out.extend_from_slice(dump.as_bytes());
            }
            Frame::HelloAck { node, echo_t, t_us } => {
                out.push(4);
                put_u32(&mut out, *node);
                put_u64(&mut out, *echo_t);
                put_u64(&mut out, *t_us);
            }
            Frame::Telemetry {
                node,
                recoveries,
                crashes,
                fsync_count,
                fsync_p99_us,
                span_events,
                events,
            } => {
                out.push(5);
                put_u32(&mut out, *node);
                put_u64(&mut out, *recoveries);
                put_u64(&mut out, *crashes);
                put_u64(&mut out, *fsync_count);
                put_u64(&mut out, *fsync_p99_us);
                put_u64(&mut out, *span_events);
                put_u64(&mut out, *events);
            }
            Frame::EnvBatch { entries } => {
                out.push(6);
                put_u32(&mut out, entries.len() as u32);
                for e in entries {
                    put_tagged_env(&mut out, e.tag, e.re, &e.env);
                }
            }
        }
        let body_len = out.len() - 4;
        if body_len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { len: body_len });
        }
        out[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        Ok(out)
    }

    /// Decodes one frame body (the bytes *after* the length prefix).
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]: truncation, bad version/kind/tag, trailing
    /// bytes, over-length bodies, over-deep values.
    pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
        if body.len() > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { len: body.len() });
        }
        let mut c = Cursor { buf: body, at: 0 };
        let version = c.u8()?;
        if version != FRAME_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let frame = match c.u8()? {
            0 => Frame::Hello {
                node: c.u32()?,
                t_us: c.u64()?,
            },
            1 => {
                let e = c.tagged_env()?;
                Frame::Env {
                    tag: e.tag,
                    re: e.re,
                    env: e.env,
                }
            }
            2 => Frame::Shutdown,
            3 => Frame::Goodbye {
                node: c.u32()?,
                crashes: c.u64()?,
                recoveries: c.u64()?,
                wal_lost: c.u64()?,
                wal_replayed: c.u64()?,
                fsync_p99_us: c.u64()?,
                dump: c.string()?,
            },
            4 => Frame::HelloAck {
                node: c.u32()?,
                echo_t: c.u64()?,
                t_us: c.u64()?,
            },
            5 => Frame::Telemetry {
                node: c.u32()?,
                recoveries: c.u64()?,
                crashes: c.u64()?,
                fsync_count: c.u64()?,
                fsync_p99_us: c.u64()?,
                span_events: c.u64()?,
                events: c.u64()?,
            },
            6 => {
                let n = c.u32()? as usize;
                let mut entries = Vec::new();
                for _ in 0..n {
                    entries.push(c.tagged_env()?);
                }
                Frame::EnvBatch { entries }
            }
            k => return Err(FrameError::BadKind(k)),
        };
        if c.at != body.len() {
            return Err(FrameError::Trailing {
                extra: body.len() - c.at,
            });
        }
        Ok(frame)
    }
}

/// Writes one encoded frame, counting `net.frames_sent`/`net.bytes_sent`.
///
/// # Errors
///
/// Propagates the underlying I/O error; [`FrameError`]s surface as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = frame
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    w.write_all(&bytes)?;
    blunt_obs::static_counter!("net.frames_sent").inc();
    blunt_obs::static_counter!("net.bytes_sent").add(bytes.len() as u64);
    Ok(())
}

/// Reads one frame, counting `net.frames_received`/`net.bytes_received`.
/// Returns `Ok(None)` on a clean end of stream (EOF at a frame boundary).
///
/// # Errors
///
/// Propagates the underlying I/O error; a body over [`MAX_FRAME_LEN`], a
/// mid-frame EOF, or a [`FrameError`] surface as
/// [`io::ErrorKind::InvalidData`]/[`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte ends the stream; EOF after a
    // partial header is a truncation error.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge { len },
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let frame = Frame::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    blunt_obs::static_counter!("net.frames_received").inc();
    blunt_obs::static_counter!("net.bytes_received").add(4 + len as u64);
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) {
        let bytes = frame.encode().expect("encodes");
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4, "length prefix counts the body");
        assert_eq!(&Frame::decode(&bytes[4..]).expect("decodes"), frame);
    }

    fn env_frame(msg: Payload, exempt: bool) -> Frame {
        Frame::Env {
            tag: 0xDEAD_BEEF_0042,
            re: 7,
            env: Envelope {
                src: Pid(3),
                dst: Pid(0),
                msg,
                exempt,
                reply_to: 0,
                span: SpanCtx::request(3, 42),
            },
        }
    }

    #[test]
    fn span_context_round_trips_in_env_frames() {
        for span in [
            SpanCtx::NONE,
            SpanCtx::request(3, 42),
            SpanCtx::request(3, 42).reply(),
            SpanCtx {
                client: u32::MAX - 1,
                op: u64::MAX,
                hop: 255,
            },
        ] {
            let frame = Frame::Env {
                tag: 9,
                re: 0,
                env: Envelope::abd(
                    Pid(4),
                    Pid(1),
                    blunt_abd::msg::AbdMsg::Query {
                        obj: ObjId(0),
                        sn: 1,
                    },
                    false,
                )
                .with_span(span),
            };
            roundtrip(&frame);
        }
    }

    #[test]
    fn every_payload_variant_round_trips() {
        use blunt_abd::msg::AbdMsg;
        let ts = Ts { t: -3, pid: 9 };
        let vals = [
            Val::Nil,
            Val::Int(i64::MIN),
            Val::Pair(Box::new((Val::Int(1), Val::Nil))),
            Val::Tuple(vec![
                Val::Int(2),
                Val::Pair(Box::new((Val::Nil, Val::Int(-7)))),
            ]),
        ];
        for val in vals {
            for payload in [
                Payload::Abd(AbdMsg::Query {
                    obj: ObjId(1),
                    sn: 42,
                }),
                Payload::Abd(AbdMsg::Reply {
                    obj: ObjId(0),
                    sn: u32::MAX,
                    val: val.clone(),
                    ts,
                }),
                Payload::Abd(AbdMsg::Update {
                    obj: ObjId(7),
                    sn: 0,
                    val: val.clone(),
                    ts,
                }),
                Payload::Abd(AbdMsg::Ack {
                    obj: ObjId(2),
                    sn: 5,
                }),
                Payload::Crash { window: u64::MAX },
                Payload::StateQuery { sn: 11 },
                Payload::StateReply {
                    sn: 12,
                    snap: vec![],
                },
                Payload::StateReply {
                    sn: 13,
                    snap: vec![(ObjId(0), val.clone(), ts), (ObjId(7), Val::Nil, ts)],
                },
            ] {
                roundtrip(&env_frame(payload.clone(), false));
                roundtrip(&env_frame(payload, true));
            }
        }
    }

    #[test]
    fn control_frames_round_trip() {
        roundtrip(&Frame::Hello {
            node: DRIVER_NODE,
            t_us: 123_456,
        });
        roundtrip(&Frame::Hello { node: 2, t_us: 0 });
        roundtrip(&Frame::Shutdown);
        roundtrip(&Frame::Goodbye {
            node: 1,
            crashes: 3,
            recoveries: 3,
            wal_lost: 17,
            wal_replayed: 9,
            fsync_p99_us: 840,
            dump: String::new(),
        });
        roundtrip(&Frame::Goodbye {
            node: 2,
            crashes: 0,
            recoveries: 0,
            wal_lost: 0,
            wal_replayed: 0,
            fsync_p99_us: 0,
            dump: "{\"type\":\"flight_dump\",\"schema_version\":2,\"events\":0}\n".into(),
        });
        roundtrip(&Frame::HelloAck {
            node: 0,
            echo_t: 77,
            t_us: 1_000_077,
        });
        roundtrip(&Frame::Telemetry {
            node: 2,
            recoveries: 4,
            crashes: 4,
            fsync_count: 900,
            fsync_p99_us: 310,
            span_events: 12_000,
            events: 15_000,
        });
    }

    /// The batching invariant at the codec layer: an `EnvBatch` round-trips,
    /// and its decoded entries are *exactly* the `(tag, re, env)` triples
    /// the same envelopes would produce as individual `Env` frames — so a
    /// receiver unpacking a batch in order observes the same logical
    /// envelope sequence as an unbatched sender.
    #[test]
    fn env_batch_decodes_to_the_same_sequence_as_individual_env_frames() {
        let entries = vec![
            TaggedEnv {
                tag: 11,
                re: 0,
                env: Envelope::abd(
                    Pid(5),
                    Pid(0),
                    AbdMsg::Query {
                        obj: ObjId(3),
                        sn: 2,
                    },
                    false,
                )
                .with_span(SpanCtx::request(5, 77)),
            },
            TaggedEnv {
                tag: 12,
                re: 4,
                env: Envelope::abd(
                    Pid(5),
                    Pid(1),
                    AbdMsg::Update {
                        obj: ObjId(9),
                        sn: 2,
                        val: Val::Int(-8),
                        ts: Ts { t: 6, pid: 5 },
                    },
                    true,
                ),
            },
            TaggedEnv {
                tag: 12, // duplicated entry (a Duplicate fate packs twice)
                re: 4,
                env: Envelope::abd(
                    Pid(5),
                    Pid(1),
                    AbdMsg::Update {
                        obj: ObjId(9),
                        sn: 2,
                        val: Val::Int(-8),
                        ts: Ts { t: 6, pid: 5 },
                    },
                    true,
                ),
            },
        ];
        let batch = Frame::EnvBatch {
            entries: entries.clone(),
        };
        roundtrip(&batch);
        roundtrip(&Frame::EnvBatch { entries: vec![] });
        let bytes = batch.encode().unwrap();
        let Frame::EnvBatch { entries: decoded } = Frame::decode(&bytes[4..]).unwrap() else {
            panic!("kind 6 decodes as EnvBatch");
        };
        assert_eq!(decoded.len(), entries.len());
        for (got, want) in decoded.iter().zip(&entries) {
            // Each batched entry ≡ what the equivalent single Env frame
            // would deliver.
            let single = Frame::Env {
                tag: want.tag,
                re: want.re,
                env: want.env.clone(),
            };
            let single_bytes = single.encode().unwrap();
            let Frame::Env { tag, re, env } = Frame::decode(&single_bytes[4..]).unwrap() else {
                panic!("kind 1 decodes as Env");
            };
            assert_eq!((got.tag, got.re, &got.env), (tag, re, &env));
        }
    }

    #[test]
    fn non_utf8_goodbye_dumps_are_rejected() {
        let mut bytes = Frame::Goodbye {
            node: 1,
            crashes: 0,
            recoveries: 0,
            wal_lost: 0,
            wal_replayed: 0,
            fsync_p99_us: 0,
            dump: "ab".into(),
        }
        .encode()
        .unwrap();
        let at = bytes.len() - 2;
        bytes[at] = 0xFF; // continuation byte with no lead: invalid UTF-8
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::BadUtf8));
    }

    #[test]
    fn truncated_bodies_are_rejected_at_every_cut() {
        let bytes = env_frame(
            Payload::StateReply {
                sn: 1,
                snap: vec![(
                    ObjId(3),
                    Val::Tuple(vec![Val::Int(5), Val::Nil]),
                    Ts { t: 1, pid: 0 },
                )],
            },
            false,
        )
        .encode()
        .unwrap();
        let body = &bytes[4..];
        for cut in 0..body.len() {
            assert_eq!(
                Frame::decode(&body[..cut]),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
        // And the full body decodes — the loop above proves every strict
        // prefix fails, so the format is non-ambiguous under truncation.
        assert!(Frame::decode(body).is_ok());
    }

    #[test]
    fn bad_version_kind_and_tag_are_rejected() {
        let mut bytes = env_frame(Payload::StateQuery { sn: 1 }, false)
            .encode()
            .unwrap();
        let good = bytes.clone();
        bytes[4] = FRAME_VERSION + 1;
        assert_eq!(
            Frame::decode(&bytes[4..]),
            Err(FrameError::BadVersion(FRAME_VERSION + 1))
        );
        bytes = good.clone();
        bytes[5] = 200;
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::BadKind(200)));
        // The payload tag byte sits right after tag/re/src/dst/exempt/span
        // (span = client:u32 op:u64 hop:u8 → 13 bytes).
        bytes = good.clone();
        let payload_tag_at = 4 + 2 + 8 + 8 + 4 + 4 + 1 + 13;
        bytes[payload_tag_at] = 99;
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::BadTag(99)));
        // Trailing garbage after a well-formed frame is an error too.
        bytes = good;
        bytes.push(0);
        assert_eq!(
            Frame::decode(&bytes[4..]),
            Err(FrameError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn max_size_frame_boundary() {
        // A StateReply whose tuple value pads the body to exactly
        // MAX_FRAME_LEN encodes and round-trips; one more byte is TooLarge
        // on encode, and a decoder rejects an over-long body outright.
        let pad = |n: usize| Frame::Env {
            tag: 1,
            re: 0,
            env: Envelope {
                src: Pid(0),
                dst: Pid(4),
                msg: Payload::StateReply {
                    sn: 0,
                    snap: vec![(ObjId(0), Val::Tuple(vec![Val::Nil; n]), Ts { t: 0, pid: 0 })],
                },
                exempt: true,
                reply_to: 0,
                span: SpanCtx::NONE,
            },
        };
        let overhead = pad(0).encode().unwrap().len() - 4;
        let exact = pad(MAX_FRAME_LEN - overhead);
        let bytes = exact.encode().expect("exactly MAX_FRAME_LEN encodes");
        assert_eq!(bytes.len() - 4, MAX_FRAME_LEN);
        assert_eq!(&Frame::decode(&bytes[4..]).unwrap(), &exact);
        assert_eq!(
            pad(MAX_FRAME_LEN - overhead + 1).encode(),
            Err(FrameError::TooLarge {
                len: MAX_FRAME_LEN + 1
            })
        );
        let mut too_long = bytes[4..].to_vec();
        too_long.push(0);
        assert_eq!(
            Frame::decode(&too_long),
            Err(FrameError::TooLarge {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn over_deep_values_are_rejected_not_overflowed() {
        let mut v = Val::Nil;
        for _ in 0..(MAX_VAL_DEPTH + 8) {
            v = Val::Pair(Box::new((v, Val::Nil)));
        }
        let bytes = env_frame(
            Payload::StateReply {
                sn: 0,
                snap: vec![(ObjId(0), v, Ts { t: 0, pid: 0 })],
            },
            false,
        )
        .encode()
        .unwrap();
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::TooDeep));
    }

    #[test]
    fn read_write_frame_round_trip_over_a_byte_stream() {
        let frames = vec![
            Frame::Hello { node: 0, t_us: 5 },
            env_frame(
                Payload::Abd(AbdMsg::Query {
                    obj: ObjId(0),
                    sn: 1,
                }),
                false,
            ),
            Frame::Shutdown,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A partial length header is a truncation, not a clean EOF.
        let mut partial = &buf[..2];
        assert!(read_frame(&mut partial).is_err());
    }

    /// Seeded SplitMix64 for the corruption fuzzer below (the net crate has
    /// no dependency on `blunt-sim`, so the five-line generator lives here).
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Satellite hardening: a decoder fed tens of thousands of seeded
    /// mutations of valid frames — byte flips, truncations, extensions,
    /// and pure noise — must always return a structured [`FrameError`] or
    /// a valid frame, never panic. Every accepted mutant must re-encode
    /// (decode yields only encodable frames).
    #[test]
    fn randomized_corruption_never_panics_and_always_errors_structurally() {
        use blunt_abd::msg::AbdMsg;
        let corpus: Vec<Vec<u8>> = [
            Frame::Hello {
                node: DRIVER_NODE,
                t_us: 42,
            },
            env_frame(
                Payload::Abd(AbdMsg::Reply {
                    obj: ObjId(0),
                    sn: 3,
                    val: Val::Tuple(vec![
                        Val::Int(5),
                        Val::Pair(Box::new((Val::Nil, Val::Int(1)))),
                    ]),
                    ts: Ts { t: 7, pid: 1 },
                }),
                false,
            ),
            env_frame(
                Payload::Abd(AbdMsg::Update {
                    obj: ObjId(1),
                    sn: 9,
                    val: Val::Int(-4),
                    ts: Ts { t: 1, pid: 0 },
                }),
                true,
            ),
            env_frame(Payload::Crash { window: 3 }, true),
            env_frame(
                Payload::StateReply {
                    sn: 2,
                    snap: vec![
                        (ObjId(0), Val::Nil, Ts { t: 0, pid: 2 }),
                        (ObjId(4), Val::Int(9), Ts { t: 3, pid: 1 }),
                    ],
                },
                true,
            ),
            Frame::EnvBatch {
                entries: vec![
                    TaggedEnv {
                        tag: 5,
                        re: 0,
                        env: Envelope::abd(
                            Pid(4),
                            Pid(0),
                            AbdMsg::Query {
                                obj: ObjId(2),
                                sn: 8,
                            },
                            false,
                        ),
                    },
                    TaggedEnv {
                        tag: 6,
                        re: 2,
                        env: Envelope::abd(
                            Pid(4),
                            Pid(1),
                            AbdMsg::Update {
                                obj: ObjId(2),
                                sn: 8,
                                val: Val::Int(1),
                                ts: Ts { t: 4, pid: 4 },
                            },
                            false,
                        ),
                    },
                ],
            },
            Frame::Shutdown,
            Frame::Goodbye {
                node: 0,
                crashes: 1,
                recoveries: 1,
                wal_lost: 2,
                wal_replayed: 3,
                fsync_p99_us: 99,
                dump: "{\"type\":\"flight_dump\",\"schema_version\":2,\"events\":0}\n".into(),
            },
            Frame::HelloAck {
                node: 1,
                echo_t: 10,
                t_us: 20,
            },
            Frame::Telemetry {
                node: 2,
                recoveries: 1,
                crashes: 1,
                fsync_count: 5,
                fsync_p99_us: 7,
                span_events: 100,
                events: 120,
            },
        ]
        .iter()
        .map(|f| f.encode().unwrap()[4..].to_vec())
        .collect();

        let mut rng = Mix(0x0B1D_5EED_F422_ED00);
        let mut decoded_ok = 0u64;
        for round in 0..12_000u64 {
            let mut body = corpus[rng.below(corpus.len())].clone();
            match round % 4 {
                // Flip 1–4 bytes anywhere in the body.
                0 => {
                    for _ in 0..(1 + rng.below(4)) {
                        let at = rng.below(body.len());
                        body[at] ^= (rng.next() % 255 + 1) as u8;
                    }
                }
                // Truncate at a random cut.
                1 => body.truncate(rng.below(body.len())),
                // Extend with random trailing bytes.
                2 => {
                    for _ in 0..(1 + rng.below(8)) {
                        body.push((rng.next() & 0xFF) as u8);
                    }
                }
                // Replace with pure noise of random length (version byte
                // kept valid half the time so kind/tag paths get exercised).
                _ => {
                    body = (0..rng.below(64))
                        .map(|_| (rng.next() & 0xFF) as u8)
                        .collect();
                    if !body.is_empty() && round % 8 < 4 {
                        body[0] = FRAME_VERSION;
                    }
                }
            }
            // The property under test: decode returns, structurally.
            if let Ok(frame) = Frame::decode(&body) {
                decoded_ok += 1;
                let reencoded = frame.encode().expect("decoded frames re-encode");
                assert_eq!(Frame::decode(&reencoded[4..]).as_ref(), Ok(&frame));
            }
        }
        // Sanity: some mutants (e.g. flipped numeric fields) must still
        // decode, or the fuzzer is only exercising the error paths.
        assert!(decoded_ok > 0, "corpus mutations never decoded");
    }
}
