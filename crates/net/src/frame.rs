//! The wire format: length-prefixed, versioned frames with a hand-rolled
//! zero-dependency encoding.
//!
//! ```text
//! frame     := len:u32le body
//! body      := version:u8 kind:u8 rest
//! kind 0    := Hello    node:u32le
//! kind 1    := Env      tag:u64le re:u64le src:u32le dst:u32le exempt:u8 payload
//! kind 2    := Shutdown
//! kind 3    := Goodbye  node:u32le crashes:u64le recoveries:u64le
//!                       wal_lost:u64le wal_replayed:u64le
//! payload   := 0 obj:u32le sn:u32le                 (Abd Query)
//!            | 1 obj:u32le sn:u32le ts val          (Abd Reply)
//!            | 2 obj:u32le sn:u32le ts val          (Abd Update)
//!            | 3 obj:u32le sn:u32le                 (Abd Ack)
//!            | 4 window:u64le                       (Crash)
//!            | 5 sn:u64le                           (StateQuery)
//!            | 6 sn:u64le ts val                    (StateReply)
//! ts        := t:i64le pid:u32le
//! val       := 0 | 1 v:i64le | 2 val val | 3 n:u32le val*n
//! ```
//!
//! `len` counts the body only and is capped at [`MAX_FRAME_LEN`]; a longer
//! frame is rejected on both encode and decode, bounding a reader's
//! allocation. Decoding is strict: unknown versions/kinds/tags, truncated
//! bodies, trailing bytes, and `Val` nesting past [`MAX_VAL_DEPTH`] are all
//! errors — a corrupt or hostile peer can kill its own connection, never
//! the process.
//!
//! The `tag`/`re` pair in `Env` frames is the RPC correlation header (see
//! [`crate::rpc`]): `tag` is unique per sent frame within a process, `re`
//! names the inbound frame this one answers (`0` = unsolicited). It is
//! deliberately *outside* the envelope payload: correlation is a transport
//! concern, and the in-process bus never materializes it.

use std::fmt;
use std::io::{self, Read, Write};

use blunt_abd::msg::AbdMsg;
use blunt_abd::ts::Ts;
use blunt_core::ids::{ObjId, Pid};
use blunt_core::value::Val;

use crate::wire::{Envelope, Payload};

/// The wire-format version this build speaks. A peer announcing any other
/// version is rejected with [`FrameError::BadVersion`].
pub const FRAME_VERSION: u8 = 1;

/// Upper bound on an encoded frame body, in bytes. Bounds the allocation a
/// reader performs on behalf of a peer.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Maximum [`Val`] nesting depth a decoder will follow (`Pair`/`Tuple`
/// recursion); deeper structures are rejected rather than risking a stack
/// overflow on hostile input.
pub const MAX_VAL_DEPTH: u32 = 64;

/// The sentinel `Hello` node id announcing the client driver (servers are
/// `0..servers`, so the driver takes the top of the id space).
pub const DRIVER_NODE: u32 = u32::MAX;

/// One frame on a connection: a session handshake, a tagged envelope, or a
/// shutdown-protocol control message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: who is dialing. `node` is a server
    /// pid or [`DRIVER_NODE`]; the accepting side uses it to register the
    /// connection as the route back to that node.
    Hello {
        /// The dialing node's id.
        node: u32,
    },
    /// A protocol envelope with its RPC correlation header.
    Env {
        /// This frame's own tag: unique per sent frame within a process,
        /// never 0. Receivers use it for duplicate suppression and echo it
        /// as `re` in replies.
        tag: u64,
        /// The tag of the inbound frame this one answers; 0 = unsolicited.
        re: u64,
        /// The envelope itself ([`Envelope::reply_to`] is *not* serialized —
        /// the header's `tag`/`re` carry correlation on the wire).
        env: Envelope,
    },
    /// The driver is done: finish pending work, send a [`Frame::Goodbye`],
    /// and exit.
    Shutdown,
    /// A server's parting stats, aggregated into the driver's run report.
    Goodbye {
        /// The departing server's pid.
        node: u32,
        /// Crash events it processed.
        crashes: u64,
        /// Recoveries it completed.
        recoveries: u64,
        /// WAL records lost to crashes (timing-dependent).
        wal_lost: u64,
        /// WAL records replayed during recoveries (timing-dependent).
        wal_replayed: u64,
    },
}

/// Why a frame failed to encode or decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The body ended before the structure it promised.
    Truncated,
    /// The body is longer than [`MAX_FRAME_LEN`].
    TooLarge {
        /// The offending length.
        len: usize,
    },
    /// The version byte is not [`FRAME_VERSION`].
    BadVersion(u8),
    /// The frame kind byte is unknown.
    BadKind(u8),
    /// A payload or value tag byte is unknown.
    BadTag(u8),
    /// Decoded bytes were left over after the frame's structure ended.
    Trailing {
        /// How many bytes remained.
        extra: usize,
    },
    /// A `Val` nested deeper than [`MAX_VAL_DEPTH`].
    TooDeep,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame body truncated"),
            FrameError::TooLarge { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            FrameError::BadVersion(v) => {
                write!(f, "frame version {v} (this build speaks {FRAME_VERSION})")
            }
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadTag(t) => write!(f, "unknown payload/value tag {t}"),
            FrameError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after the frame body")
            }
            FrameError::TooDeep => {
                write!(f, "value nesting exceeds depth {MAX_VAL_DEPTH}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_ts(out: &mut Vec<u8>, ts: Ts) {
    out.extend_from_slice(&ts.t.to_le_bytes());
    put_u32(out, ts.pid);
}

fn put_val(out: &mut Vec<u8>, v: &Val) {
    match v {
        Val::Nil => out.push(0),
        Val::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Val::Pair(p) => {
            out.push(2);
            put_val(out, &p.0);
            put_val(out, &p.1);
        }
        Val::Tuple(items) => {
            out.push(3);
            put_u32(out, items.len() as u32);
            for item in items {
                put_val(out, item);
            }
        }
    }
}

fn put_payload(out: &mut Vec<u8>, p: &Payload) {
    match p {
        Payload::Abd(AbdMsg::Query { obj, sn }) => {
            out.push(0);
            put_u32(out, obj.0);
            put_u32(out, *sn);
        }
        Payload::Abd(AbdMsg::Reply { obj, sn, val, ts }) => {
            out.push(1);
            put_u32(out, obj.0);
            put_u32(out, *sn);
            put_ts(out, *ts);
            put_val(out, val);
        }
        Payload::Abd(AbdMsg::Update { obj, sn, val, ts }) => {
            out.push(2);
            put_u32(out, obj.0);
            put_u32(out, *sn);
            put_ts(out, *ts);
            put_val(out, val);
        }
        Payload::Abd(AbdMsg::Ack { obj, sn }) => {
            out.push(3);
            put_u32(out, obj.0);
            put_u32(out, *sn);
        }
        Payload::Crash { window } => {
            out.push(4);
            put_u64(out, *window);
        }
        Payload::StateQuery { sn } => {
            out.push(5);
            put_u64(out, *sn);
        }
        Payload::StateReply { sn, val, ts } => {
            out.push(6);
            put_u64(out, *sn);
            put_ts(out, *ts);
            put_val(out, val);
        }
    }
}

/// A strict little-endian cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.at + n > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn ts(&mut self) -> Result<Ts, FrameError> {
        let t = self.i64()?;
        let pid = self.u32()?;
        Ok(Ts { t, pid })
    }

    fn val(&mut self, depth: u32) -> Result<Val, FrameError> {
        if depth > MAX_VAL_DEPTH {
            return Err(FrameError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Val::Nil),
            1 => Ok(Val::Int(self.i64()?)),
            2 => {
                let a = self.val(depth + 1)?;
                let b = self.val(depth + 1)?;
                Ok(Val::Pair(Box::new((a, b))))
            }
            3 => {
                let n = self.u32()? as usize;
                // No preallocation by the peer's claimed length: the body
                // cap bounds the real size, push grows as elements decode.
                let mut items = Vec::new();
                for _ in 0..n {
                    items.push(self.val(depth + 1)?);
                }
                Ok(Val::Tuple(items))
            }
            t => Err(FrameError::BadTag(t)),
        }
    }

    fn payload(&mut self) -> Result<Payload, FrameError> {
        match self.u8()? {
            0 => Ok(Payload::Abd(AbdMsg::Query {
                obj: ObjId(self.u32()?),
                sn: self.u32()?,
            })),
            1 => {
                let obj = ObjId(self.u32()?);
                let sn = self.u32()?;
                let ts = self.ts()?;
                let val = self.val(0)?;
                Ok(Payload::Abd(AbdMsg::Reply { obj, sn, val, ts }))
            }
            2 => {
                let obj = ObjId(self.u32()?);
                let sn = self.u32()?;
                let ts = self.ts()?;
                let val = self.val(0)?;
                Ok(Payload::Abd(AbdMsg::Update { obj, sn, val, ts }))
            }
            3 => Ok(Payload::Abd(AbdMsg::Ack {
                obj: ObjId(self.u32()?),
                sn: self.u32()?,
            })),
            4 => Ok(Payload::Crash {
                window: self.u64()?,
            }),
            5 => Ok(Payload::StateQuery { sn: self.u64()? }),
            6 => {
                let sn = self.u64()?;
                let ts = self.ts()?;
                let val = self.val(0)?;
                Ok(Payload::StateReply { sn, val, ts })
            }
            t => Err(FrameError::BadTag(t)),
        }
    }
}

impl Frame {
    /// Encodes the frame as `len:u32le` + body, ready to write.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the body exceeds [`MAX_FRAME_LEN`].
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut out = vec![0u8; 4];
        out.push(FRAME_VERSION);
        match self {
            Frame::Hello { node } => {
                out.push(0);
                put_u32(&mut out, *node);
            }
            Frame::Env { tag, re, env } => {
                out.push(1);
                put_u64(&mut out, *tag);
                put_u64(&mut out, *re);
                put_u32(&mut out, env.src.0);
                put_u32(&mut out, env.dst.0);
                out.push(u8::from(env.exempt));
                put_payload(&mut out, &env.msg);
            }
            Frame::Shutdown => out.push(2),
            Frame::Goodbye {
                node,
                crashes,
                recoveries,
                wal_lost,
                wal_replayed,
            } => {
                out.push(3);
                put_u32(&mut out, *node);
                put_u64(&mut out, *crashes);
                put_u64(&mut out, *recoveries);
                put_u64(&mut out, *wal_lost);
                put_u64(&mut out, *wal_replayed);
            }
        }
        let body_len = out.len() - 4;
        if body_len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { len: body_len });
        }
        out[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        Ok(out)
    }

    /// Decodes one frame body (the bytes *after* the length prefix).
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]: truncation, bad version/kind/tag, trailing
    /// bytes, over-length bodies, over-deep values.
    pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
        if body.len() > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { len: body.len() });
        }
        let mut c = Cursor { buf: body, at: 0 };
        let version = c.u8()?;
        if version != FRAME_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let frame = match c.u8()? {
            0 => Frame::Hello { node: c.u32()? },
            1 => {
                let tag = c.u64()?;
                let re = c.u64()?;
                let src = Pid(c.u32()?);
                let dst = Pid(c.u32()?);
                let exempt = c.u8()? != 0;
                let msg = c.payload()?;
                Frame::Env {
                    tag,
                    re,
                    env: Envelope {
                        src,
                        dst,
                        msg,
                        exempt,
                        reply_to: 0,
                    },
                }
            }
            2 => Frame::Shutdown,
            3 => Frame::Goodbye {
                node: c.u32()?,
                crashes: c.u64()?,
                recoveries: c.u64()?,
                wal_lost: c.u64()?,
                wal_replayed: c.u64()?,
            },
            k => return Err(FrameError::BadKind(k)),
        };
        if c.at != body.len() {
            return Err(FrameError::Trailing {
                extra: body.len() - c.at,
            });
        }
        Ok(frame)
    }
}

/// Writes one encoded frame, counting `net.frames_sent`/`net.bytes_sent`.
///
/// # Errors
///
/// Propagates the underlying I/O error; [`FrameError`]s surface as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = frame
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    w.write_all(&bytes)?;
    blunt_obs::static_counter!("net.frames_sent").inc();
    blunt_obs::static_counter!("net.bytes_sent").add(bytes.len() as u64);
    Ok(())
}

/// Reads one frame, counting `net.frames_received`/`net.bytes_received`.
/// Returns `Ok(None)` on a clean end of stream (EOF at a frame boundary).
///
/// # Errors
///
/// Propagates the underlying I/O error; a body over [`MAX_FRAME_LEN`], a
/// mid-frame EOF, or a [`FrameError`] surface as
/// [`io::ErrorKind::InvalidData`]/[`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte ends the stream; EOF after a
    // partial header is a truncation error.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge { len },
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let frame = Frame::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    blunt_obs::static_counter!("net.frames_received").inc();
    blunt_obs::static_counter!("net.bytes_received").add(4 + len as u64);
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) {
        let bytes = frame.encode().expect("encodes");
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4, "length prefix counts the body");
        assert_eq!(&Frame::decode(&bytes[4..]).expect("decodes"), frame);
    }

    fn env_frame(msg: Payload, exempt: bool) -> Frame {
        Frame::Env {
            tag: 0xDEAD_BEEF_0042,
            re: 7,
            env: Envelope {
                src: Pid(3),
                dst: Pid(0),
                msg,
                exempt,
                reply_to: 0,
            },
        }
    }

    #[test]
    fn every_payload_variant_round_trips() {
        use blunt_abd::msg::AbdMsg;
        let ts = Ts { t: -3, pid: 9 };
        let vals = [
            Val::Nil,
            Val::Int(i64::MIN),
            Val::Pair(Box::new((Val::Int(1), Val::Nil))),
            Val::Tuple(vec![
                Val::Int(2),
                Val::Pair(Box::new((Val::Nil, Val::Int(-7)))),
            ]),
        ];
        for val in vals {
            for payload in [
                Payload::Abd(AbdMsg::Query {
                    obj: ObjId(1),
                    sn: 42,
                }),
                Payload::Abd(AbdMsg::Reply {
                    obj: ObjId(0),
                    sn: u32::MAX,
                    val: val.clone(),
                    ts,
                }),
                Payload::Abd(AbdMsg::Update {
                    obj: ObjId(7),
                    sn: 0,
                    val: val.clone(),
                    ts,
                }),
                Payload::Abd(AbdMsg::Ack {
                    obj: ObjId(2),
                    sn: 5,
                }),
                Payload::Crash { window: u64::MAX },
                Payload::StateQuery { sn: 11 },
                Payload::StateReply {
                    sn: 12,
                    val: val.clone(),
                    ts,
                },
            ] {
                roundtrip(&env_frame(payload.clone(), false));
                roundtrip(&env_frame(payload, true));
            }
        }
    }

    #[test]
    fn control_frames_round_trip() {
        roundtrip(&Frame::Hello { node: DRIVER_NODE });
        roundtrip(&Frame::Hello { node: 2 });
        roundtrip(&Frame::Shutdown);
        roundtrip(&Frame::Goodbye {
            node: 1,
            crashes: 3,
            recoveries: 3,
            wal_lost: 17,
            wal_replayed: 9,
        });
    }

    #[test]
    fn truncated_bodies_are_rejected_at_every_cut() {
        let bytes = env_frame(
            Payload::StateReply {
                sn: 1,
                val: Val::Tuple(vec![Val::Int(5), Val::Nil]),
                ts: Ts { t: 1, pid: 0 },
            },
            false,
        )
        .encode()
        .unwrap();
        let body = &bytes[4..];
        for cut in 0..body.len() {
            assert_eq!(
                Frame::decode(&body[..cut]),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
        // And the full body decodes — the loop above proves every strict
        // prefix fails, so the format is non-ambiguous under truncation.
        assert!(Frame::decode(body).is_ok());
    }

    #[test]
    fn bad_version_kind_and_tag_are_rejected() {
        let mut bytes = env_frame(Payload::StateQuery { sn: 1 }, false)
            .encode()
            .unwrap();
        let good = bytes.clone();
        bytes[4] = FRAME_VERSION + 1;
        assert_eq!(
            Frame::decode(&bytes[4..]),
            Err(FrameError::BadVersion(FRAME_VERSION + 1))
        );
        bytes = good.clone();
        bytes[5] = 200;
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::BadKind(200)));
        // The payload tag byte sits right after tag/re/src/dst/exempt.
        bytes = good.clone();
        let payload_tag_at = 4 + 2 + 8 + 8 + 4 + 4 + 1;
        bytes[payload_tag_at] = 99;
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::BadTag(99)));
        // Trailing garbage after a well-formed frame is an error too.
        bytes = good;
        bytes.push(0);
        assert_eq!(
            Frame::decode(&bytes[4..]),
            Err(FrameError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn max_size_frame_boundary() {
        // A StateReply whose tuple value pads the body to exactly
        // MAX_FRAME_LEN encodes and round-trips; one more byte is TooLarge
        // on encode, and a decoder rejects an over-long body outright.
        let pad = |n: usize| Frame::Env {
            tag: 1,
            re: 0,
            env: Envelope {
                src: Pid(0),
                dst: Pid(4),
                msg: Payload::StateReply {
                    sn: 0,
                    val: Val::Tuple(vec![Val::Nil; n]),
                    ts: Ts { t: 0, pid: 0 },
                },
                exempt: true,
                reply_to: 0,
            },
        };
        let overhead = pad(0).encode().unwrap().len() - 4;
        let exact = pad(MAX_FRAME_LEN - overhead);
        let bytes = exact.encode().expect("exactly MAX_FRAME_LEN encodes");
        assert_eq!(bytes.len() - 4, MAX_FRAME_LEN);
        assert_eq!(&Frame::decode(&bytes[4..]).unwrap(), &exact);
        assert_eq!(
            pad(MAX_FRAME_LEN - overhead + 1).encode(),
            Err(FrameError::TooLarge {
                len: MAX_FRAME_LEN + 1
            })
        );
        let mut too_long = bytes[4..].to_vec();
        too_long.push(0);
        assert_eq!(
            Frame::decode(&too_long),
            Err(FrameError::TooLarge {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn over_deep_values_are_rejected_not_overflowed() {
        let mut v = Val::Nil;
        for _ in 0..(MAX_VAL_DEPTH + 8) {
            v = Val::Pair(Box::new((v, Val::Nil)));
        }
        let bytes = env_frame(
            Payload::StateReply {
                sn: 0,
                val: v,
                ts: Ts { t: 0, pid: 0 },
            },
            false,
        )
        .encode()
        .unwrap();
        assert_eq!(Frame::decode(&bytes[4..]), Err(FrameError::TooDeep));
    }

    #[test]
    fn read_write_frame_round_trip_over_a_byte_stream() {
        let frames = vec![
            Frame::Hello { node: 0 },
            env_frame(
                Payload::Abd(AbdMsg::Query {
                    obj: ObjId(0),
                    sn: 1,
                }),
                false,
            ),
            Frame::Shutdown,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A partial length header is a truncation, not a clean EOF.
        let mut partial = &buf[..2];
        assert!(read_frame(&mut partial).is_err());
    }
}
