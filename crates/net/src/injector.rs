//! The shared fault-decision core: one seed-determined [`FaultPlan`] plus
//! the stats, coverage, and crash-signal bookkeeping that every transport
//! backend updates *atomically with* each fate decision.
//!
//! The in-process bus and the socket transports realize fates differently
//! (mpsc enqueues vs. frame writes), but the decision itself — which fate,
//! which counters, whether a crash window just exited — must be identical
//! and must happen under one lock so the resulting [`TransportStats`] and
//! [`Coverage`] are pure functions of the seed. [`Injector::decide`] is
//! that critical section, extracted so both backends share it bit for bit.

use std::collections::HashSet;

use blunt_core::ids::Pid;

use crate::coverage::{Coverage, LinkCoverage};
use crate::fault::{Fate, FaultConfig, FaultConfigError, FaultPlan};

/// Deterministic fault counters accumulated by a run; equal across runs
/// with the same seed and configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TransportStats {
    /// First-transmission messages offered to the injector.
    pub offered: u64,
    /// Messages dropped by the random drop fault.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages swapped with their successor.
    pub reordered: u64,
    /// Messages held back by a delay.
    pub delayed: u64,
    /// Messages lost to crash blackout windows.
    pub crash_dropped: u64,
    /// Messages lost to partition windows.
    pub partition_dropped: u64,
    /// Distinct `(server, window)` crash events signaled (0 unless the
    /// transport was built with `signal_crashes`).
    pub crash_events: u64,
}

/// The fault-decision state of one transport endpoint: the per-link fate
/// streams plus everything that must update under the same lock as a fate
/// decision (stats, coverage tallies, pending-crash windows, signaled
/// sets). Callers wrap it in their own `Mutex` alongside backend-specific
/// state (e.g. reorder hold-back slots).
pub struct Injector {
    plan: FaultPlan,
    cfg: FaultConfig,
    nodes: u32,
    signal_crashes: bool,
    stats: TransportStats,
    /// Per-link fate tallies for the coverage report, updated with the
    /// decision (so coverage is seed-deterministic).
    coverage: Vec<LinkCoverage>,
    /// Per-link: the crash window the link's latest first-transmission fell
    /// into, awaiting its exit (the next non-`CrashDrop` index).
    pending_crash: Vec<Option<u64>>,
    /// Crash windows already signaled, per server (index = pid).
    signaled: Vec<HashSet<u64>>,
}

impl Injector {
    /// Builds the injector for a topology of `nodes` processes of which
    /// `Pid(0..servers)` are servers. With `signal_crashes`, crash blackout
    /// windows raise the amnesia signal at their exit (see
    /// [`Injector::decide`]); without it, crashes stay pure blackouts.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultConfig::validate`] error for unusable
    /// configurations (overlapping crash stagger, zero periods,
    /// oversubscribed rates).
    pub fn new(
        seed: u64,
        cfg: FaultConfig,
        servers: u32,
        nodes: u32,
        signal_crashes: bool,
    ) -> Result<Injector, FaultConfigError> {
        let plan = FaultPlan::new(seed, cfg, servers, nodes)?;
        Ok(Injector {
            plan,
            cfg,
            nodes,
            signal_crashes,
            stats: TransportStats::default(),
            coverage: (0..nodes * nodes)
                .map(|i| LinkCoverage {
                    src: i / nodes,
                    dst: i % nodes,
                    ..LinkCoverage::default()
                })
                .collect(),
            pending_crash: vec![None; (nodes * nodes) as usize],
            signaled: (0..servers).map(|_| HashSet::new()).collect(),
        })
    }

    /// Decides the fate of the next first-transmission message on
    /// `src → dst`, updating stats, coverage, and the crash-window exit
    /// bookkeeping in the same step. Returns the fate plus, at most once
    /// per `(server, window)` pair, the crash signal the caller must
    /// deliver (as an exempt [`Payload::Crash`](crate::Payload::Crash)
    /// envelope) *before* realizing the triggering message's fate.
    ///
    /// Exempt envelopes must never be passed through here — they consume no
    /// fault-schedule indices.
    pub fn decide(&mut self, src: Pid, dst: Pid) -> (Fate, Option<(Pid, u64)>) {
        self.stats.offered += 1;
        let fate = self.plan.fate(src, dst);
        let slot = (src.0 * self.nodes + dst.0) as usize;
        // Crash-window exit detection: a CrashDrop marks the link as
        // inside a window; the next non-CrashDrop index on the same
        // link means the window has passed, and the server restarts —
        // signaled at most once per (server, window), race-free under
        // the same lock that decided the fate.
        let mut signal = None;
        if self.signal_crashes {
            if let Fate::CrashDrop { window } = fate {
                self.pending_crash[slot] = Some(window);
            } else if let Some(w) = self.pending_crash[slot].take() {
                if self.signaled[dst.index()].insert(w) {
                    self.stats.crash_events += 1;
                    signal = Some((dst, w));
                }
            }
        }
        let cov = &mut self.coverage[slot];
        cov.offered += 1;
        match fate {
            Fate::Deliver => cov.delivered += 1,
            Fate::Drop => cov.dropped += 1,
            Fate::Duplicate => cov.duplicated += 1,
            Fate::Reorder => cov.reordered += 1,
            Fate::Delay(_) => cov.delayed += 1,
            Fate::CrashDrop { window } => {
                cov.crash_dropped += 1;
                cov.crash_windows.insert(window);
            }
            Fate::PartitionDrop { window } => {
                cov.partition_dropped += 1;
                cov.partition_windows.insert(window);
            }
        }
        match fate {
            Fate::Drop => self.stats.dropped += 1,
            Fate::Duplicate => self.stats.duplicated += 1,
            Fate::Reorder => self.stats.reordered += 1,
            Fate::Delay(_) => self.stats.delayed += 1,
            Fate::CrashDrop { .. } => self.stats.crash_dropped += 1,
            Fate::PartitionDrop { .. } => self.stats.partition_dropped += 1,
            Fate::Deliver => {}
        }
        (fate, signal)
    }

    /// The deterministic fault counters so far.
    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// The fault-schedule coverage so far: per-link fate tallies (links
    /// with traffic only) plus the configured window shape. Deterministic
    /// for a seed, like [`Injector::stats`].
    #[must_use]
    pub fn coverage(&self) -> Coverage {
        Coverage {
            links: self
                .coverage
                .iter()
                .filter(|l| l.offered > 0)
                .cloned()
                .collect(),
            crash_len: self.cfg.crash_len,
            crash_period: self.cfg.crash_period,
            partition_len: self.cfg.partition_len,
            partition_period: self.cfg.partition_period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_matches_the_raw_plan_and_counts_every_fate() {
        let cfg = FaultConfig::chaos();
        let expected = FaultPlan::preview(9, cfg, 3, 6, Pid(4), Pid(0), 600);
        let mut inj = Injector::new(9, cfg, 3, 6, false).unwrap();
        let got: Vec<Fate> = (0..600).map(|_| inj.decide(Pid(4), Pid(0)).0).collect();
        assert_eq!(got, expected, "the injector must not perturb the plan");
        let s = inj.stats();
        assert_eq!(s.offered, 600);
        assert_eq!(
            s.offered,
            s.dropped
                + s.duplicated
                + s.reordered
                + s.delayed
                + s.crash_dropped
                + s.partition_dropped
                + inj.coverage().links[0].delivered
        );
        assert_eq!(s.crash_events, 0, "no signaling unless asked");
    }

    #[test]
    fn crash_signal_fires_once_per_window_at_its_exit() {
        // One server, crash window [0, 4) of each 10-index period: indices
        // 0–3 are CrashDrop, index 4 is the first past the window and must
        // carry the signal — exactly once, even with two links racing.
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 4;
        cfg.crash_period = 10;
        let mut inj = Injector::new(0, cfg, 1, 3, true).unwrap();
        let mut signals = Vec::new();
        for _ in 0..6 {
            for src in [1u32, 2] {
                if let (_, Some(sig)) = inj.decide(Pid(src), Pid(0)) {
                    signals.push(sig);
                }
            }
        }
        assert_eq!(signals, vec![(Pid(0), 0)]);
        assert_eq!(inj.stats().crash_events, 1);
    }

    #[test]
    fn stats_and_coverage_are_reproducible_for_a_seed() {
        let run = || {
            let mut inj = Injector::new(42, FaultConfig::chaos(), 3, 6, true).unwrap();
            for _ in 0..400 {
                for dst in 0..3 {
                    inj.decide(Pid(4), Pid(dst));
                }
                inj.decide(Pid(0), Pid(4));
            }
            (inj.stats(), inj.coverage())
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        assert_eq!(s1, s2);
        assert_eq!(c1.to_json().to_string(), c2.to_json().to_string());
        assert!(s1.crash_events > 0);
    }
}
