//! Seed-determined fault schedules.
//!
//! The chaos runtime's replay contract is that the *fault schedule* — which
//! message suffers which fault — is a pure function of the run seed, even
//! though OS thread interleavings are not. The trick is to index faults not
//! by wall-clock time but by **per-link message counts**: the `i`-th
//! first-transmission message on the directed link `src → dst` always meets
//! the same fate, decided by a [`SplitMix64`] stream derived from
//! `(seed, src, dst)`.
//!
//! This works because the per-link sequence of first-transmission protocol
//! messages is itself schedule-independent (see `docs/RUNTIME.md` for the
//! argument): clients issue a fixed broadcast sequence per operation, and a
//! server's responses to one client follow that client's messages in
//! per-sender FIFO order. Retransmissions are *exempt* — they bypass the
//! injector entirely and consume no fault indices — so timing-dependent
//! retry counts cannot shift the schedule.
//!
//! Crash/restart is modeled as a per-server **blackout window** in link-index
//! space: every incoming link of a crashed server drops messages with
//! indices inside the window (stable storage: the server's register state
//! survives). Windows of distinct servers are staggered disjointly so a
//! quorum is always available and every window is eventually crossed.

use std::fmt;

use blunt_core::ids::Pid;
use blunt_sim::rng::SplitMix64;

/// Why a [`FaultConfig`] was rejected by [`FaultConfig::validate`].
///
/// Every variant carries the offending numbers so callers (notably the
/// `chaos` CLI) can report a usage error the user can act on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultConfigError {
    /// The per-server crash windows do not fit disjointly into
    /// `crash_period`: overlapping windows could take a majority of servers
    /// down simultaneously and stall the run.
    CrashStaggerOverflow {
        /// Servers that must each get a disjoint window.
        servers: u32,
        /// Configured window length.
        crash_len: u64,
        /// Configured period.
        crash_period: u64,
        /// Minimum period that would fit: `servers × (crash_len + 1)`.
        required: u64,
    },
    /// `crash_len > 0` but `crash_period == 0` (the window phase would be a
    /// division by zero).
    CrashPeriodZero,
    /// `partition_len > 0` but `partition_period == 0`.
    PartitionPeriodZero,
    /// The per-mille fault rates sum past 1000, so the later fault kinds in
    /// the drop → duplicate → reorder → delay order could never fire.
    RatesExceedMille {
        /// The offending sum of the four rates.
        total: u32,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::CrashStaggerOverflow {
                servers,
                crash_len,
                crash_period,
                required,
            } => write!(
                f,
                "crash windows must stagger disjointly within the period: \
                 {servers} servers × (crash_len {crash_len} + 1) = {required} \
                 exceeds crash_period {crash_period}"
            ),
            FaultConfigError::CrashPeriodZero => {
                write!(f, "crash_len > 0 requires crash_period > 0")
            }
            FaultConfigError::PartitionPeriodZero => {
                write!(f, "partition_len > 0 requires partition_period > 0")
            }
            FaultConfigError::RatesExceedMille { total } => write!(
                f,
                "drop + duplicate + reorder + delay rates sum to {total}‰, \
                 past the 1000‰ of a whole message stream"
            ),
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// Per-message fault probabilities and crash/partition shape knobs.
///
/// All rates are per-mille (‰) of first-transmission messages; they are
/// applied in the order drop → duplicate → reorder → delay, from a single
/// random draw per message (so enabling one fault never shifts another
/// fault's schedule positions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultConfig {
    /// ‰ of messages silently dropped.
    pub drop_per_mille: u16,
    /// ‰ of messages delivered twice.
    pub duplicate_per_mille: u16,
    /// ‰ of messages swapped with the next message on the same link.
    pub reorder_per_mille: u16,
    /// ‰ of messages held back for a random delay.
    pub delay_per_mille: u16,
    /// Upper bound on the injected delay, in milliseconds (≥ 1 when delays
    /// are enabled).
    pub max_delay_ms: u16,
    /// Length of each crash blackout window, in link-index units. `0`
    /// disables crashes.
    pub crash_len: u64,
    /// Period between successive crash cycles, in link-index units. Each
    /// cycle crashes every server once, at staggered disjoint offsets.
    /// Must be at least `servers × (crash_len + 1)` for the stagger to fit;
    /// [`FaultConfig::validate`] checks this and [`FaultPlan::new`] returns
    /// the error.
    pub crash_period: u64,
    /// Length of each partition window, in link-index units. `0` disables
    /// partitions.
    pub partition_len: u64,
    /// Period between successive partition windows, in link-index units.
    pub partition_period: u64,
}

impl FaultConfig {
    /// No faults at all: every message is delivered once, in order.
    #[must_use]
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 1,
            crash_len: 0,
            crash_period: 1,
            partition_len: 0,
            partition_period: 1,
        }
    }

    /// A gentle mix: sparse drops and delays, no duplicates, reorders,
    /// crashes, or partitions.
    #[must_use]
    pub fn light() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 10,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            delay_per_mille: 10,
            max_delay_ms: 2,
            crash_len: 0,
            crash_period: 1,
            partition_len: 0,
            partition_period: 1,
        }
    }

    /// The standard soak mix: drops, delays, duplicates, reorders, and
    /// periodic staggered crashes.
    #[must_use]
    pub fn chaos() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 30,
            duplicate_per_mille: 20,
            reorder_per_mille: 20,
            delay_per_mille: 30,
            max_delay_ms: 3,
            crash_len: 8,
            crash_period: 200,
            partition_len: 6,
            partition_period: 150,
        }
    }

    /// Checks the configuration against a runtime with `servers` server
    /// processes.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultConfigError`] naming the offending numbers when the
    /// crash stagger does not fit its period (the stagger may fill the
    /// period *exactly* — the windows are still disjoint), when a window
    /// length is set with a zero period, or when the per-mille rates sum
    /// past 1000.
    pub fn validate(&self, servers: u32) -> Result<(), FaultConfigError> {
        if self.crash_len > 0 {
            if self.crash_period == 0 {
                return Err(FaultConfigError::CrashPeriodZero);
            }
            let required = u64::from(servers) * (self.crash_len + 1);
            if required > self.crash_period {
                return Err(FaultConfigError::CrashStaggerOverflow {
                    servers,
                    crash_len: self.crash_len,
                    crash_period: self.crash_period,
                    required,
                });
            }
        }
        if self.partition_len > 0 && self.partition_period == 0 {
            return Err(FaultConfigError::PartitionPeriodZero);
        }
        let total = u32::from(self.drop_per_mille)
            + u32::from(self.duplicate_per_mille)
            + u32::from(self.reorder_per_mille)
            + u32::from(self.delay_per_mille);
        if total > 1000 {
            return Err(FaultConfigError::RatesExceedMille { total });
        }
        Ok(())
    }
}

/// The fate of one first-transmission message, as decided by the plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fate {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver twice.
    Duplicate,
    /// Swap with the next message on the same link.
    Reorder,
    /// Hold back for this many milliseconds before delivering.
    Delay(u16),
    /// Dropped because the destination server is inside a crash blackout
    /// window. Carries the window's cycle number (`index / crash_period`),
    /// which identifies the crash *event*: the bus raises its amnesia
    /// signal at the window's exit, when a link's next first-transmission
    /// index lands past the `CrashDrop` run (the server reboots after the
    /// outage).
    CrashDrop {
        /// Which crash cycle of the destination server this index falls in.
        window: u64,
    },
    /// Dropped because the link is inside a partition window. Carries the
    /// window's cycle number (`index / partition_period`) so coverage
    /// reporting can say *which* partition windows a link crossed.
    PartitionDrop {
        /// Which partition cycle this index falls in.
        window: u64,
    },
}

/// Mixes a link identity into the run seed, giving each directed link an
/// independent random stream.
fn link_seed(seed: u64, src: Pid, dst: Pid) -> u64 {
    // One SplitMix64 output step keyed by (seed, src, dst): cheap, and the
    // avalanche of the finalizer decorrelates neighboring links.
    SplitMix64::new(seed ^ (u64::from(src.0) << 32) ^ u64::from(dst.0).wrapping_mul(0x9E37_79B9))
        .next_u64()
}

/// The per-link fault decision stream.
struct LinkFates {
    rng: SplitMix64,
    index: u64,
}

/// A seed-determined fault schedule over the links of one runtime instance.
///
/// The plan is consulted once per first-transmission message via
/// [`FaultPlan::fate`]; exempt (retransmitted) messages must not be passed
/// through it.
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
    servers: u32,
    nodes: u32,
    links: Vec<Option<LinkFates>>,
}

impl FaultPlan {
    /// Builds the plan for a runtime with `servers` server processes
    /// (`Pid(0..servers)`) and `nodes` processes total.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultConfig::validate`] error when the configuration is
    /// unusable — most importantly when the crash stagger does not fit into
    /// `crash_period` (overlapping windows could take a majority down
    /// simultaneously and stall the run).
    pub fn new(
        seed: u64,
        cfg: FaultConfig,
        servers: u32,
        nodes: u32,
    ) -> Result<FaultPlan, FaultConfigError> {
        cfg.validate(servers)?;
        Ok(FaultPlan {
            seed,
            cfg,
            servers,
            nodes,
            links: (0..nodes * nodes).map(|_| None).collect(),
        })
    }

    /// Is link index `i` on a link into server `dst` inside a crash window?
    ///
    /// Within each `crash_period`, server `s` is down for the index range
    /// `[s·(len+1), s·(len+1)+len)` — disjoint across servers by the
    /// constructor's assertion.
    fn crash_covers(&self, dst: Pid, i: u64) -> bool {
        if self.cfg.crash_len == 0 || dst.0 >= self.servers {
            return false;
        }
        let phase = i % self.cfg.crash_period;
        let start = u64::from(dst.0) * (self.cfg.crash_len + 1);
        phase >= start && phase < start + self.cfg.crash_len
    }

    /// Is link index `i` on `src → dst` inside a partition window?
    ///
    /// Each period has one window of `partition_len` indices; during window
    /// `w` every node is assigned a side by a seed-derived coin, and links
    /// crossing the cut drop. The side assignment depends only on
    /// `(seed, window, node)`, so all links agree on the cut.
    fn partition_covers(&self, src: Pid, dst: Pid, i: u64) -> bool {
        if self.cfg.partition_len == 0 {
            return false;
        }
        if i % self.cfg.partition_period >= self.cfg.partition_len {
            return false;
        }
        let window = i / self.cfg.partition_period;
        let side = |p: Pid| {
            SplitMix64::new(self.seed ^ 0x5041_5254 ^ window.wrapping_mul(31) ^ u64::from(p.0))
                .next_u64()
                & 1
        };
        side(src) != side(dst)
    }

    /// Decides the fate of the next first-transmission message on
    /// `src → dst`, advancing that link's stream.
    pub fn fate(&mut self, src: Pid, dst: Pid) -> Fate {
        let slot = (src.0 * self.nodes + dst.0) as usize;
        let link = self.links[slot].get_or_insert_with(|| LinkFates {
            rng: SplitMix64::new(link_seed(self.seed, src, dst)),
            index: 0,
        });
        let i = link.index;
        link.index += 1;
        // One draw per message, always consumed, so every fault dimension
        // sees the same stream positions regardless of the others' rates.
        let r = link.rng.next_u64();
        if self.crash_covers(dst, i) {
            return Fate::CrashDrop {
                window: i / self.cfg.crash_period,
            };
        }
        if self.partition_covers(src, dst, i) {
            return Fate::PartitionDrop {
                window: i / self.cfg.partition_period,
            };
        }
        let roll = (r % 1000) as u16;
        let c = &self.cfg;
        let mut edge = c.drop_per_mille;
        if roll < edge {
            return Fate::Drop;
        }
        edge += c.duplicate_per_mille;
        if roll < edge {
            return Fate::Duplicate;
        }
        edge += c.reorder_per_mille;
        if roll < edge {
            // Delays and reorders are restricted to server→client links:
            // perturbing a *server's* arrival order would make its response
            // sequence (and hence the reverse link's message indexing)
            // timing-dependent, breaking the replay contract. Client-bound
            // responses are safe to shuffle — client protocol machines are
            // order-insensitive in their message *counts* (quorums fill in
            // any order; stale messages are discarded by `sn`).
            if dst.0 < self.servers {
                return Fate::Deliver;
            }
            return Fate::Reorder;
        }
        edge += c.delay_per_mille;
        if roll < edge {
            if dst.0 < self.servers {
                return Fate::Deliver;
            }
            // Delay amount from the draw's high bits: still one draw per
            // message.
            let ms = 1 + ((r >> 32) % u64::from(c.max_delay_ms.max(1))) as u16;
            return Fate::Delay(ms);
        }
        Fate::Deliver
    }

    /// The first `n` fates of link `src → dst` as a pure function of the
    /// seed — the replayability witness used by tests and `docs/RUNTIME.md`.
    #[must_use]
    pub fn preview(
        seed: u64,
        cfg: FaultConfig,
        servers: u32,
        nodes: u32,
        src: Pid,
        dst: Pid,
        n: usize,
    ) -> Vec<Fate> {
        let mut plan = FaultPlan::new(seed, cfg, servers, nodes).expect("valid fault config");
        (0..n).map(|_| plan.fate(src, dst)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fates() {
        let cfg = FaultConfig::chaos();
        let a = FaultPlan::preview(7, cfg, 3, 11, Pid(4), Pid(1), 500);
        let b = FaultPlan::preview(7, cfg, 3, 11, Pid(4), Pid(1), 500);
        assert_eq!(a, b);
        let c = FaultPlan::preview(8, cfg, 3, 11, Pid(4), Pid(1), 500);
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn links_have_independent_streams() {
        let cfg = FaultConfig::chaos();
        let a = FaultPlan::preview(7, cfg, 3, 11, Pid(4), Pid(1), 200);
        let b = FaultPlan::preview(7, cfg, 3, 11, Pid(4), Pid(2), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn crash_windows_are_disjoint_across_servers() {
        let cfg = FaultConfig::chaos();
        let plan = FaultPlan::new(1, cfg, 3, 5).unwrap();
        for i in 0..3 * cfg.crash_period {
            let down: u32 = (0..3)
                .map(|s| u32::from(plan.crash_covers(Pid(s), i)))
                .sum();
            assert!(down <= 1, "at most one server down at index {i}");
        }
        // And each server is actually down somewhere in each period.
        for s in 0..3 {
            assert!(
                (0..cfg.crash_period).any(|i| plan.crash_covers(Pid(s), i)),
                "server {s} never crashes"
            );
        }
    }

    #[test]
    fn clients_never_crash() {
        let cfg = FaultConfig::chaos();
        let plan = FaultPlan::new(1, cfg, 3, 5).unwrap();
        for i in 0..2 * cfg.crash_period {
            assert!(
                !plan.crash_covers(Pid(4), i),
                "client pid in a crash window"
            );
        }
    }

    #[test]
    fn partitions_cut_both_directions_consistently() {
        let mut cfg = FaultConfig::none();
        cfg.partition_len = 5;
        cfg.partition_period = 20;
        let plan = FaultPlan::new(3, cfg, 3, 6).unwrap();
        for i in 0..60 {
            for a in 0..6 {
                for b in 0..6 {
                    assert_eq!(
                        plan.partition_covers(Pid(a), Pid(b), i),
                        plan.partition_covers(Pid(b), Pid(a), i),
                        "cut must be symmetric at index {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn server_bound_links_never_delay_or_reorder() {
        let mut cfg = FaultConfig::none();
        cfg.delay_per_mille = 500;
        cfg.reorder_per_mille = 500;
        let to_server = FaultPlan::preview(5, cfg, 3, 5, Pid(4), Pid(0), 400);
        assert!(to_server.iter().all(|f| *f == Fate::Deliver));
        let to_client = FaultPlan::preview(5, cfg, 3, 5, Pid(0), Pid(4), 400);
        assert!(to_client.iter().any(|f| matches!(f, Fate::Delay(_))));
        assert!(to_client.contains(&Fate::Reorder));
    }

    #[test]
    fn no_faults_config_always_delivers() {
        let fates = FaultPlan::preview(9, FaultConfig::none(), 3, 5, Pid(3), Pid(0), 300);
        assert!(fates.iter().all(|f| *f == Fate::Deliver));
    }

    #[test]
    fn overlapping_crash_stagger_is_a_recoverable_error() {
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 50;
        cfg.crash_period = 100;
        let err = FaultPlan::new(0, cfg, 3, 5)
            .err()
            .expect("must be rejected");
        assert_eq!(
            err,
            FaultConfigError::CrashStaggerOverflow {
                servers: 3,
                crash_len: 50,
                crash_period: 100,
                required: 153,
            }
        );
        // The rendered message carries the offending numbers for the CLI.
        let msg = err.to_string();
        assert!(msg.contains("153") && msg.contains("100"), "{msg}");
    }

    #[test]
    fn validate_rejects_zero_periods_and_oversubscribed_rates() {
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 2;
        cfg.crash_period = 0;
        assert_eq!(
            cfg.validate(3),
            Err(FaultConfigError::CrashPeriodZero),
            "crash phase would divide by zero"
        );

        let mut cfg = FaultConfig::none();
        cfg.partition_len = 2;
        cfg.partition_period = 0;
        assert_eq!(cfg.validate(3), Err(FaultConfigError::PartitionPeriodZero));

        let mut cfg = FaultConfig::none();
        cfg.drop_per_mille = 600;
        cfg.delay_per_mille = 600;
        assert_eq!(
            cfg.validate(3),
            Err(FaultConfigError::RatesExceedMille { total: 1200 })
        );

        assert_eq!(FaultConfig::chaos().validate(3), Ok(()));
        assert_eq!(FaultConfig::light().validate(3), Ok(()));
        assert_eq!(FaultConfig::none().validate(3), Ok(()));
    }

    #[test]
    fn crash_window_boundaries_are_half_open() {
        // Server s is down exactly on [s·(len+1), s·(len+1)+len) within each
        // period: the start index is covered, the end index is not, and the
        // index just before the start belongs to the previous server's gap.
        let cfg = FaultConfig::chaos(); // len 8, period 200
        let plan = FaultPlan::new(1, cfg, 3, 5).unwrap();
        for s in 0..3u32 {
            let start = u64::from(s) * (cfg.crash_len + 1);
            for period_base in [0, cfg.crash_period, 5 * cfg.crash_period] {
                assert!(
                    plan.crash_covers(Pid(s), period_base + start),
                    "window start must be covered (server {s})"
                );
                assert!(
                    plan.crash_covers(Pid(s), period_base + start + cfg.crash_len - 1),
                    "last window index must be covered (server {s})"
                );
                assert!(
                    !plan.crash_covers(Pid(s), period_base + start + cfg.crash_len),
                    "window end is exclusive (server {s})"
                );
                if start > 0 {
                    assert!(
                        !plan.crash_covers(Pid(s), period_base + start - 1),
                        "index before the window belongs to the gap (server {s})"
                    );
                }
            }
        }
    }

    #[test]
    fn stagger_exactly_filling_the_period_is_accepted_and_disjoint() {
        // 3 servers × (len 3 + 1) = 12 = crash_period: the tightest legal
        // packing. Windows must still be pairwise disjoint and every server
        // must crash once per cycle.
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 3;
        cfg.crash_period = 12;
        assert_eq!(cfg.validate(3), Ok(()));
        let plan = FaultPlan::new(7, cfg, 3, 5).unwrap();
        for i in 0..3 * cfg.crash_period {
            let down: u32 = (0..3)
                .map(|s| u32::from(plan.crash_covers(Pid(s), i)))
                .sum();
            assert!(down <= 1, "at most one server down at index {i}");
        }
        for s in 0..3 {
            let covered = (0..cfg.crash_period)
                .filter(|&i| plan.crash_covers(Pid(s), i))
                .count() as u64;
            assert_eq!(covered, cfg.crash_len, "server {s} window length");
        }
        // One more server would need 16 > 12: rejected with the numbers.
        assert_eq!(
            cfg.validate(4),
            Err(FaultConfigError::CrashStaggerOverflow {
                servers: 4,
                crash_len: 3,
                crash_period: 12,
                required: 16,
            })
        );
    }

    #[test]
    fn crash_drop_fates_carry_the_window_cycle() {
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 4;
        cfg.crash_period = 10;
        let fates = FaultPlan::preview(3, cfg, 1, 3, Pid(2), Pid(0), 25);
        for (i, fate) in fates.iter().enumerate() {
            let phase = (i as u64) % cfg.crash_period;
            if phase < cfg.crash_len {
                assert_eq!(
                    *fate,
                    Fate::CrashDrop {
                        window: i as u64 / cfg.crash_period
                    },
                    "index {i}"
                );
            } else {
                assert_eq!(*fate, Fate::Deliver, "index {i}");
            }
        }
    }
}
