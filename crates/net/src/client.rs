//! The driver endpoint: client threads and the monitor live in this
//! process; servers are reached over sockets.
//!
//! [`NetClient`] owns the **client→server** half of the fault schedule:
//! every non-exempt request consults the shared [`Injector`] exactly like
//! the in-process bus would, and the resulting fate is realized at the
//! socket — `Drop` family skips the write, `Duplicate` writes the same
//! tagged frame twice (the server's dedup window absorbs the copy), and
//! crash-window exits inject the exempt amnesia signal *before* the
//! triggering frame on the same FIFO connection. `Reorder`/`Delay` never
//! occur on client→server links (the schedule restricts them to
//! server→client), so the driver needs no hold-back machinery.
//!
//! Inbound frames are replies: each reader thread routes them to the
//! issuing client's lane by the frame's `re` header via [`ReplyRouter`];
//! replies to retired tags count as `net.rpc.tag_mismatch_drops`.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use blunt_core::ids::Pid;
use blunt_obs::flight::FlightDump;
use blunt_obs::{FlightKind, FlightRecorder, FlightRing};

use crate::conn::Addr;
use crate::fault::{Fate, FaultConfig, FaultConfigError};
use crate::frame::{read_frame, Frame, TaggedEnv, DRIVER_NODE};
use crate::injector::{Injector, TransportStats};
use crate::pool::{BroadcastPool, ConnectionPool};
use crate::rpc::{DedupWindow, ReplyRouter, TagGen};
use crate::wire::{Envelope, Payload, SpanCtx};
use crate::{Coverage, Transport};

/// How a driver reaches its servers.
pub struct NetClientCfg {
    /// Fault-schedule seed (shared with the servers' own injectors).
    pub seed: u64,
    /// Fault configuration (shared likewise).
    pub faults: FaultConfig,
    /// One listen address per server, index = server pid.
    pub servers: Vec<Addr>,
    /// Number of client threads this driver runs.
    pub clients: u32,
    /// Whether crash-window exits raise the amnesia signal (sent to the
    /// crashed server as an exempt [`Payload::Crash`] frame).
    pub signal_crashes: bool,
}

/// A server's parting stats, reported in its `Goodbye` frame at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerGoodbye {
    /// Crash events the server processed.
    pub crashes: u64,
    /// Recoveries it completed.
    pub recoveries: u64,
    /// WAL records it lost to crashes.
    pub wal_lost: u64,
    /// WAL records it replayed during recoveries.
    pub wal_replayed: u64,
    /// p99 WAL fsync latency (µs) over the server's whole run.
    pub fsync_p99_us: u64,
}

/// A server's cumulative telemetry snapshot, shipped periodically over the
/// driver connection as a `Telemetry` frame. Last-writer-wins on the
/// driver side, so a server that dies before its `Goodbye` still leaves
/// its most recent counters behind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerTelemetry {
    /// Recoveries completed so far.
    pub recoveries: u64,
    /// Crash events processed so far.
    pub crashes: u64,
    /// WAL fsyncs performed so far.
    pub fsync_count: u64,
    /// Running p99 WAL fsync latency (µs).
    pub fsync_p99_us: u64,
    /// Flight events recorded so far that carry a span.
    pub span_events: u64,
    /// Flight events recorded so far, total.
    pub events: u64,
}

/// What the driver knows about one remote server process: its estimated
/// clock offset and the latest telemetry/dump it shipped back.
#[derive(Clone, Debug, Default)]
pub struct RemoteServer {
    /// Estimated offset of the server's flight clock relative to the
    /// driver's (`remote_t ≈ driver_t + offset_us`), from the latest
    /// `Hello`/`HelloAck` round trip.
    pub offset_us: i64,
    /// The most recent `Telemetry` snapshot, if any arrived.
    pub telemetry: Option<ServerTelemetry>,
    /// The bounded flight dump piggybacked on the server's `Goodbye`, if
    /// one arrived and parsed.
    pub dump: Option<FlightDump>,
}

/// State the per-connection reader threads share with the send path.
struct Shared {
    router: ReplyRouter,
    /// One mailbox per client lane (lane = pid − servers).
    lanes: Vec<Sender<Envelope>>,
    goodbyes: Mutex<Vec<Option<ServerGoodbye>>>,
    /// Per-server remote state (index = server pid).
    remote: Mutex<Vec<RemoteServer>>,
    /// The driver's flight recorder — its clock is the reference frame for
    /// clock-offset estimation.
    flight: Arc<FlightRecorder>,
}

impl Shared {
    fn reader_loop(&self, peer: usize, mut stream: crate::conn::Stream) {
        let mut dedup = DedupWindow::new(1024);
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(Some(f)) => f,
                Ok(None) | Err(_) => return,
            };
            match frame {
                Frame::Env { tag, re, env } => {
                    if !dedup.admit(tag) {
                        blunt_obs::static_counter!("net.rpc.dedup_drops").inc();
                        continue;
                    }
                    match self.router.route(re) {
                        Some(lane) => {
                            let _ = self.lanes[lane].send(env.in_reply_to(tag));
                        }
                        None => {
                            blunt_obs::static_counter!("net.rpc.tag_mismatch_drops").inc();
                        }
                    }
                }
                Frame::EnvBatch { entries } => {
                    // Unpack in order: each entry is handled exactly as if
                    // it had arrived as its own `Env` frame (same dedup,
                    // same lane routing), so batching is invisible above
                    // the framing layer.
                    for e in entries {
                        if !dedup.admit(e.tag) {
                            blunt_obs::static_counter!("net.rpc.dedup_drops").inc();
                            continue;
                        }
                        match self.router.route(e.re) {
                            Some(lane) => {
                                let _ = self.lanes[lane].send(e.env.in_reply_to(e.tag));
                            }
                            None => {
                                blunt_obs::static_counter!("net.rpc.tag_mismatch_drops").inc();
                            }
                        }
                    }
                }
                Frame::HelloAck { echo_t, t_us, .. } => {
                    // Cristian's algorithm: assume the reply took half the
                    // round trip, so the server stamped `t_us` at roughly
                    // driver-time `echo_t + rtt/2`.
                    let now = self.flight.now_us();
                    let rtt = now.saturating_sub(echo_t);
                    let offset = t_us as i64 - (echo_t + rtt / 2) as i64;
                    self.remote.lock().expect("remote lock")[peer].offset_us = offset;
                }
                Frame::Telemetry {
                    recoveries,
                    crashes,
                    fsync_count,
                    fsync_p99_us,
                    span_events,
                    events,
                    ..
                } => {
                    self.remote.lock().expect("remote lock")[peer].telemetry =
                        Some(ServerTelemetry {
                            recoveries,
                            crashes,
                            fsync_count,
                            fsync_p99_us,
                            span_events,
                            events,
                        });
                }
                Frame::Goodbye {
                    crashes,
                    recoveries,
                    wal_lost,
                    wal_replayed,
                    fsync_p99_us,
                    ref dump,
                    ..
                } => {
                    if !dump.is_empty() {
                        if let Ok(parsed) = FlightDump::parse(dump) {
                            self.remote.lock().expect("remote lock")[peer].dump = Some(parsed);
                        }
                    }
                    self.goodbyes.lock().expect("goodbye lock")[peer] = Some(ServerGoodbye {
                        crashes,
                        recoveries,
                        wal_lost,
                        wal_replayed,
                        fsync_p99_us,
                    });
                }
                // Servers never send these to a driver.
                Frame::Hello { .. } | Frame::Shutdown => {}
            }
        }
    }
}

/// The driver-process transport: sockets to every server, the
/// client→server fault links, and reply routing back to client lanes.
pub struct NetClient {
    servers: u32,
    injector: Mutex<Injector>,
    pool: BroadcastPool,
    tags: TagGen,
    shared: Arc<Shared>,
    flight: Arc<FlightRecorder>,
}

impl NetClient {
    /// Connects to every server in `cfg`, returning the transport plus one
    /// inbound mailbox per client lane (index = client pid − servers).
    /// Connections are dialed lazily on first send and self-heal across
    /// server restarts.
    ///
    /// # Errors
    ///
    /// [`FaultConfigError`] for unusable fault configurations; connection
    /// errors surface later, on send, as silently lost frames (the
    /// retransmission layer absorbs them).
    pub fn connect(
        cfg: &NetClientCfg,
        flight: Arc<FlightRecorder>,
    ) -> Result<(Arc<NetClient>, Vec<Receiver<Envelope>>), FaultConfigError> {
        let servers = cfg.servers.len() as u32;
        let nodes = servers + cfg.clients;
        let injector = Injector::new(cfg.seed, cfg.faults, servers, nodes, cfg.signal_crashes)?;
        let mut lanes = Vec::with_capacity(cfg.clients as usize);
        let mut receivers = Vec::with_capacity(cfg.clients as usize);
        for _ in 0..cfg.clients {
            let (tx, rx) = mpsc::channel();
            lanes.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            router: ReplyRouter::new(cfg.clients as usize),
            lanes,
            goodbyes: Mutex::new(vec![None; cfg.servers.len()]),
            remote: Mutex::new(vec![RemoteServer::default(); cfg.servers.len()]),
            flight: Arc::clone(&flight),
        });
        let reader_shared = Arc::clone(&shared);
        let hello_flight = Arc::clone(&flight);
        let pool = ConnectionPool::new(
            cfg.servers.clone(),
            // Fresh clock sample per dial: the server echoes `t_us` in its
            // `HelloAck`, giving the reader loop one offset estimate per
            // (re)connection.
            move || Frame::Hello {
                node: DRIVER_NODE,
                t_us: hello_flight.now_us(),
            },
            move |peer, stream| {
                let shared = Arc::clone(&reader_shared);
                std::thread::spawn(move || shared.reader_loop(peer, stream));
            },
        );
        let client = Arc::new(NetClient {
            servers,
            injector: Mutex::new(injector),
            pool: BroadcastPool::new(pool),
            tags: TagGen::new(),
            shared,
            flight,
        });
        Ok((client, receivers))
    }

    /// A fresh tag for an outbound frame, registered for reply routing when
    /// the sender is a client lane.
    fn tag_for(&self, src: Pid) -> u64 {
        let tag = self.tags.next();
        if src.0 >= self.servers {
            self.shared
                .router
                .register((src.0 - self.servers) as usize, tag);
        }
        tag
    }

    fn write(&self, dst: Pid, frame: &Frame) {
        // A send failure is a lost frame; retransmission recovers, exactly
        // as with any other drop on the path.
        let _ = self.pool.pool().send(dst.index(), frame);
    }

    /// Total recoveries across all servers' latest telemetry snapshots —
    /// the live number `--watch` shows while the run is still going.
    #[must_use]
    pub fn remote_recoveries(&self) -> u64 {
        self.shared
            .remote
            .lock()
            .expect("remote lock")
            .iter()
            .filter_map(|r| r.telemetry.map(|t| t.recoveries))
            .sum()
    }

    /// A snapshot of every server's remote state (index = server pid):
    /// clock offset, last telemetry, and the flight dump its `Goodbye`
    /// piggybacked, for cross-process merging.
    #[must_use]
    pub fn remote_snapshot(&self) -> Vec<RemoteServer> {
        self.shared.remote.lock().expect("remote lock").clone()
    }

    /// Draws one envelope's fate (exempt envelopes bypass the injector)
    /// and realizes every side effect except the frame write itself:
    /// fate flight events, and the exempt amnesia signal written *before*
    /// the triggering frame on the same FIFO connection. Returns how many
    /// copies of the envelope reach the wire (0 = dropped, 2 =
    /// duplicated). Shared by [`Transport::send`] and
    /// [`Transport::send_batch`], so a batched sender consumes exactly
    /// the fault-schedule indices — in exactly the per-link order — that
    /// the equivalent unbatched loop would.
    fn fate_copies(&self, env: &Envelope, ring: &FlightRing) -> usize {
        if env.exempt {
            return 1;
        }
        let (src, dst, label) = (env.src.0, env.dst.0, env.msg.flight_label());
        let (fate, signal) = {
            let mut inj = self.injector.lock().expect("injector lock");
            inj.decide(env.src, env.dst)
        };
        match fate {
            Fate::Deliver => {}
            Fate::Drop => ring.record(FlightKind::FaultDrop, src, u64::from(dst), label),
            Fate::Duplicate => ring.record(FlightKind::FaultDuplicate, src, u64::from(dst), label),
            Fate::Reorder => ring.record(FlightKind::FaultReorder, src, u64::from(dst), label),
            Fate::Delay(ms) => {
                ring.record(FlightKind::FaultDelay, src, u64::from(dst), u64::from(ms));
            }
            Fate::CrashDrop { window } => {
                ring.record(FlightKind::FaultCrashDrop, src, u64::from(dst), window);
            }
            Fate::PartitionDrop { window } => {
                ring.record(FlightKind::FaultPartitionDrop, src, u64::from(dst), window);
            }
        }
        if let Some((crashed, window)) = signal {
            // Before the triggering frame, on the same FIFO connection: the
            // server must crash and recover before serving any post-window
            // traffic.
            let frame = Frame::Env {
                tag: self.tags.next(),
                re: 0,
                env: Envelope {
                    src: crashed,
                    dst: crashed,
                    msg: Payload::Crash { window },
                    exempt: true,
                    reply_to: 0,
                    span: SpanCtx::NONE,
                },
            };
            self.write(crashed, &frame);
        }
        match fate {
            // Reorder/Delay are schedule-restricted to server→client links
            // and unreachable here; deliver defensively if they ever appear.
            Fate::Deliver | Fate::Reorder | Fate::Delay(_) => 1,
            Fate::Duplicate => 2,
            Fate::Drop | Fate::CrashDrop { .. } | Fate::PartitionDrop { .. } => 0,
        }
    }

    /// Tells every server to finish up, then waits up to `wait` for their
    /// `Goodbye` stats. Missing goodbyes (a server that died hard) come
    /// back as `None`.
    pub fn shutdown(&self, wait: Duration) -> Vec<Option<ServerGoodbye>> {
        self.pool.broadcast(|_| Frame::Shutdown);
        let deadline = Instant::now() + wait;
        loop {
            {
                let g = self.shared.goodbyes.lock().expect("goodbye lock");
                if g.iter().all(Option::is_some) || Instant::now() >= deadline {
                    return g.clone();
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Transport for NetClient {
    fn send(&self, env: Envelope) {
        let (src, dst, label) = (env.src.0, env.dst.0, env.msg.flight_label());
        let ring = self.flight.thread_ring();
        ring.record_span(
            FlightKind::BusSend,
            src,
            u64::from(dst),
            label,
            env.span.flight_word(),
        );
        let tag = self.tag_for(env.src);
        // Exempt frames keep their reply correlation; faulted traffic is
        // always unsolicited from this endpoint.
        let re = if env.exempt { env.reply_to } else { 0 };
        let copies = self.fate_copies(&env, &ring);
        let frame = Frame::Env {
            tag,
            re,
            env: Envelope { reply_to: 0, ..env },
        };
        for _ in 0..copies {
            // A duplicate is the same tag twice: the wire sees two frames,
            // the receiver's dedup window absorbs the copy.
            self.write(Pid(dst), &frame);
        }
    }

    fn send_batch(&self, envs: Vec<Envelope>) {
        let ring = self.flight.thread_ring();
        // Surviving entries grouped per destination, in first-appearance
        // order. Fates are drawn per logical envelope, in the caller's
        // order, BEFORE any batch frame is written — so the injector
        // consumes the same per-link index sequence as the unbatched loop
        // and crash signals still precede their triggering frames on the
        // FIFO connection.
        let mut per_dst: Vec<(Pid, Vec<TaggedEnv>)> = Vec::new();
        for env in envs {
            let (src, dst, label) = (env.src.0, env.dst.0, env.msg.flight_label());
            ring.record_span(
                FlightKind::BusSend,
                src,
                u64::from(dst),
                label,
                env.span.flight_word(),
            );
            let tag = self.tag_for(env.src);
            let re = if env.exempt { env.reply_to } else { 0 };
            let copies = self.fate_copies(&env, &ring);
            if copies == 0 {
                continue;
            }
            let entry = TaggedEnv {
                tag,
                re,
                env: Envelope { reply_to: 0, ..env },
            };
            let bucket = match per_dst.iter_mut().find(|(d, _)| *d == Pid(dst)) {
                Some((_, b)) => b,
                None => {
                    per_dst.push((Pid(dst), Vec::new()));
                    &mut per_dst.last_mut().expect("just pushed").1
                }
            };
            for _ in 0..copies {
                bucket.push(entry.clone());
            }
        }
        for (dst, entries) in per_dst {
            blunt_obs::static_counter!("net.batch.frames").inc();
            blunt_obs::static_counter!("net.batch.envelopes").add(entries.len() as u64);
            blunt_obs::histogram("net.batch.envelopes_per_frame").record(entries.len() as u64);
            self.write(dst, &Frame::EnvBatch { entries });
        }
    }

    fn on_op_start(&self, client: Pid) {
        if client.0 >= self.servers {
            self.shared
                .router
                .begin_op((client.0 - self.servers) as usize);
        }
    }

    fn flush(&self) {
        // No hold-backs or delayers on client→server links.
    }

    fn stats(&self) -> TransportStats {
        self.injector.lock().expect("injector lock").stats()
    }

    fn coverage(&self) -> Coverage {
        self.injector.lock().expect("injector lock").coverage()
    }
}
