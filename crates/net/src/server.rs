//! The server endpoint: one `chaos serve` process per server pid.
//!
//! [`NetServer`] accepts the driver's connection plus peer-server
//! connections (recovery traffic), funnels every inbound envelope into one
//! mailbox for the ABD server loop, and owns the **server→client** half of
//! the fault schedule: replies consult the shared [`Injector`] and realize
//! their fate at the socket — including `Reorder` (a per-link hold-back
//! slot, released when the next reply on the same link overtakes it) and
//! `Delay` (a delayer thread that writes the frame when its deadline
//! passes), which the schedule restricts to these links.
//!
//! Inbound `Shutdown` raises the stop flag; the runtime then reports the
//! server's crash/recovery/WAL stats back with [`NetServer::goodbye`].

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blunt_core::ids::Pid;
use blunt_obs::{FlightKind, FlightRecorder};

use crate::client::{ServerGoodbye, ServerTelemetry};
use crate::conn::{Addr, Stream};
use crate::fault::{Fate, FaultConfig};
use crate::frame::{read_frame, write_frame, Frame, DRIVER_NODE};
use crate::injector::{Injector, TransportStats};
use crate::pool::ConnectionPool;
use crate::rpc::{DedupWindow, TagGen};
use crate::wire::Envelope;
use crate::{Coverage, Transport};

/// How one server process joins a chaos run.
pub struct NetServerCfg {
    /// Where this server listens.
    pub listen: Addr,
    /// This server's pid (`0..servers`).
    pub me: Pid,
    /// Total number of servers in the run.
    pub servers: u32,
    /// Number of client threads the driver runs.
    pub clients: u32,
    /// Every server's listen address, index = pid (recovery traffic dials
    /// peers directly; this server's own entry is never dialed).
    pub peers: Vec<Addr>,
    /// Fault-schedule seed, shared with the driver.
    pub seed: u64,
    /// Fault configuration, shared with the driver.
    pub faults: FaultConfig,
}

/// The single writer handle back to the driver process, replaced whenever
/// the driver redials (e.g. after noticing a dead connection).
struct DriverSlot(Mutex<Option<Stream>>);

impl DriverSlot {
    fn write(&self, frame: &Frame) {
        let mut slot = self.0.lock().expect("driver slot lock");
        if let Some(s) = slot.as_mut() {
            if write_frame(s, frame).is_err() {
                // The frame is lost; the driver's pool will redial and the
                // retransmission layer recovers.
                *slot = None;
            }
        }
    }
}

struct DelayedFrame {
    due: Instant,
    frame: Frame,
}

/// The server-process transport: the driver/peer listener, the
/// server→client fault links, and the peer pool for recovery traffic.
pub struct NetServer {
    me: Pid,
    servers: u32,
    injector: Mutex<Injector>,
    peers: ConnectionPool,
    tags: TagGen,
    driver: Arc<DriverSlot>,
    /// Reorder hold-back, one slot per client link (index = dst − servers).
    holds: Vec<Mutex<Option<Frame>>>,
    delayer: Mutex<Option<Sender<DelayedFrame>>>,
    delayer_handle: Mutex<Option<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    flight: Arc<FlightRecorder>,
    /// Bumped by [`Transport::on_crash`] (an amnesia crash of this server
    /// process); every connection loop compares against its last-seen value
    /// and resets its dedup window when it lags — dedup state is volatile
    /// and must not survive the crash.
    dedup_epoch: Arc<AtomicU64>,
}

/// One accepted connection: identify the peer by its `Hello`, then pump
/// envelopes into the mailbox until the stream ends.
fn conn_loop(
    me: Pid,
    flight: &FlightRecorder,
    mut stream: Stream,
    mailbox: &Sender<Envelope>,
    driver: &DriverSlot,
    stop: &AtomicBool,
    dedup_epoch: &AtomicU64,
) {
    let (hello, hello_t) = match read_frame(&mut stream) {
        Ok(Some(Frame::Hello { node, t_us })) => (node, t_us),
        _ => return,
    };
    if hello == DRIVER_NODE {
        if let Ok(writer) = stream.try_clone() {
            *driver.0.lock().expect("driver slot lock") = Some(writer);
        }
        // Echo the driver's timestamp with our own flight clock — the same
        // clock stamping this process's flight events — so the driver can
        // estimate this process's clock offset from the round trip.
        driver.write(&Frame::HelloAck {
            node: me.0,
            echo_t: hello_t,
            t_us: flight.now_us(),
        });
    }
    let mut dedup = DedupWindow::new(1024);
    let mut seen_epoch = dedup_epoch.load(Ordering::SeqCst);
    loop {
        let frame = read_frame(&mut stream);
        // An amnesia crash since the last frame wipes this connection's
        // dedup memory: pre-crash clients retransmit tags this window has
        // already admitted, and dropping them would starve recovery of
        // exactly the retries it depends on. Checked after the blocking
        // read so the first post-crash frame sees the fresh window.
        let epoch = dedup_epoch.load(Ordering::SeqCst);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            dedup.reset();
            blunt_obs::static_counter!("net.rpc.dedup_resets").inc();
        }
        match frame {
            Ok(Some(Frame::Env { tag, env, .. })) => {
                if !dedup.admit(tag) {
                    blunt_obs::static_counter!("net.rpc.dedup_drops").inc();
                    continue;
                }
                if mailbox.send(env.in_reply_to(tag)).is_err() {
                    return;
                }
            }
            Ok(Some(Frame::EnvBatch { entries })) => {
                // Unpack in order: each entry is handled exactly as if it
                // had arrived as its own `Env` frame.
                for e in entries {
                    if !dedup.admit(e.tag) {
                        blunt_obs::static_counter!("net.rpc.dedup_drops").inc();
                        continue;
                    }
                    if mailbox.send(e.env.in_reply_to(e.tag)).is_err() {
                        return;
                    }
                }
            }
            Ok(Some(Frame::Shutdown)) => {
                stop.store(true, Ordering::SeqCst);
            }
            Ok(Some(
                Frame::Hello { .. }
                | Frame::HelloAck { .. }
                | Frame::Telemetry { .. }
                | Frame::Goodbye { .. },
            )) => {}
            Ok(None) | Err(_) => return,
        }
    }
}

impl NetServer {
    /// Binds the listener and returns the transport plus the server loop's
    /// inbound mailbox. Accepting and reading happen on background threads
    /// from here on.
    ///
    /// # Errors
    ///
    /// Bind errors, and unusable fault configurations (as
    /// [`io::ErrorKind::InvalidInput`]).
    pub fn bind(
        cfg: &NetServerCfg,
        flight: Arc<FlightRecorder>,
    ) -> io::Result<(Arc<NetServer>, Receiver<Envelope>)> {
        let nodes = cfg.servers + cfg.clients;
        let injector = Injector::new(cfg.seed, cfg.faults, cfg.servers, nodes, false)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = cfg.listen.listen()?;
        let (mailbox_tx, mailbox_rx) = mpsc::channel();
        let driver = Arc::new(DriverSlot(Mutex::new(None)));
        let stop = Arc::new(AtomicBool::new(false));
        let dedup_epoch = Arc::new(AtomicU64::new(0));
        let me = cfg.me;
        {
            let mailbox = mailbox_tx.clone();
            let driver = Arc::clone(&driver);
            let stop = Arc::clone(&stop);
            let flight = Arc::clone(&flight);
            let dedup_epoch = Arc::clone(&dedup_epoch);
            std::thread::spawn(move || loop {
                let Ok(stream) = listener.accept() else {
                    return;
                };
                let mailbox = mailbox.clone();
                let driver = Arc::clone(&driver);
                let stop = Arc::clone(&stop);
                let flight = Arc::clone(&flight);
                let dedup_epoch = Arc::clone(&dedup_epoch);
                std::thread::spawn(move || {
                    conn_loop(me, &flight, stream, &mailbox, &driver, &stop, &dedup_epoch)
                });
            });
        }
        let peers = ConnectionPool::new(
            cfg.peers.clone(),
            // Peer hellos carry no clock sample — only the driver estimates
            // offsets, from its own `Hello`/`HelloAck` round trips.
            move || Frame::Hello {
                node: me.0,
                t_us: 0,
            },
            // Peer connections are write-only from this side: replies to
            // our recovery queries arrive on the connection the peer dials
            // back (its own pool), so the read half idles until EOF.
            |_, _| {},
        );
        let server = Arc::new(NetServer {
            me,
            servers: cfg.servers,
            injector: Mutex::new(injector),
            peers,
            tags: TagGen::new(),
            driver,
            holds: (0..cfg.clients).map(|_| Mutex::new(None)).collect(),
            delayer: Mutex::new(None),
            delayer_handle: Mutex::new(None),
            stop,
            flight,
            dedup_epoch,
        });
        server.spawn_delayer();
        Ok((server, mailbox_rx))
    }

    /// The delayer thread: frames held by `Fate::Delay`, written to the
    /// driver once due. Dropping the sender flushes the rest and exits.
    fn spawn_delayer(&self) {
        let (tx, rx) = mpsc::channel::<DelayedFrame>();
        let driver = Arc::clone(&self.driver);
        let handle = std::thread::spawn(move || {
            let mut pending: Vec<DelayedFrame> = Vec::new();
            loop {
                let timeout = pending
                    .iter()
                    .map(|d| d.due.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(Duration::from_millis(50));
                match rx.recv_timeout(timeout) {
                    Ok(d) => pending.push(d),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        for d in pending.drain(..) {
                            driver.write(&d.frame);
                        }
                        return;
                    }
                }
                let now = Instant::now();
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].due <= now {
                        let d = pending.swap_remove(i);
                        driver.write(&d.frame);
                    } else {
                        i += 1;
                    }
                }
            }
        });
        *self.delayer.lock().expect("delayer lock") = Some(tx);
        *self.delayer_handle.lock().expect("delayer handle lock") = Some(handle);
    }

    /// The stop flag raised by an inbound `Shutdown` frame; the runtime's
    /// serve loop polls it.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Ships a cumulative telemetry snapshot to the driver. Best-effort:
    /// if the driver connection is down the snapshot is lost and the next
    /// periodic tick resends fresher numbers.
    pub fn telemetry(&self, t: ServerTelemetry) {
        self.driver.write(&Frame::Telemetry {
            node: self.me.0,
            recoveries: t.recoveries,
            crashes: t.crashes,
            fsync_count: t.fsync_count,
            fsync_p99_us: t.fsync_p99_us,
            span_events: t.span_events,
            events: t.events,
        });
    }

    /// Reports this server's parting stats to the driver, piggybacking a
    /// bounded flight dump (JSONL; empty string = no dump).
    pub fn goodbye(&self, g: ServerGoodbye, dump: String) {
        self.driver.write(&Frame::Goodbye {
            node: self.me.0,
            crashes: g.crashes,
            recoveries: g.recoveries,
            wal_lost: g.wal_lost,
            wal_replayed: g.wal_replayed,
            fsync_p99_us: g.fsync_p99_us,
            dump,
        });
    }
}

impl Transport for NetServer {
    fn send(&self, env: Envelope) {
        let (src, dst, label) = (env.src.0, env.dst.0, env.msg.flight_label());
        let ring = self.flight.thread_ring();
        ring.record_span(
            FlightKind::BusSend,
            src,
            u64::from(dst),
            label,
            env.span.flight_word(),
        );
        let re = env.reply_to;
        let frame = Frame::Env {
            tag: self.tags.next(),
            re,
            env: Envelope { reply_to: 0, ..env },
        };
        if dst < self.servers {
            // Peer traffic is recovery (always exempt): straight to the
            // peer's listener, no fault schedule.
            let _ = self.peers.send(dst as usize, &frame);
            return;
        }
        if let Frame::Env { env, .. } = &frame {
            if env.exempt {
                self.driver.write(&frame);
                return;
            }
        }
        let (fate, _signal) = {
            let mut inj = self.injector.lock().expect("injector lock");
            inj.decide(Pid(src), Pid(dst))
        };
        match fate {
            Fate::Deliver => {}
            Fate::Drop => ring.record(FlightKind::FaultDrop, src, u64::from(dst), label),
            Fate::Duplicate => ring.record(FlightKind::FaultDuplicate, src, u64::from(dst), label),
            Fate::Reorder => ring.record(FlightKind::FaultReorder, src, u64::from(dst), label),
            Fate::Delay(ms) => {
                ring.record(FlightKind::FaultDelay, src, u64::from(dst), u64::from(ms));
            }
            Fate::CrashDrop { window } => {
                ring.record(FlightKind::FaultCrashDrop, src, u64::from(dst), window);
            }
            Fate::PartitionDrop { window } => {
                ring.record(FlightKind::FaultPartitionDrop, src, u64::from(dst), window);
            }
        }
        let slot = (dst - self.servers) as usize;
        match fate {
            Fate::Drop | Fate::CrashDrop { .. } | Fate::PartitionDrop { .. } => {}
            Fate::Reorder => {
                let displaced = self.holds[slot].lock().expect("hold lock").replace(frame);
                if let Some(p) = displaced {
                    self.driver.write(&p);
                }
            }
            Fate::Deliver | Fate::Duplicate => {
                self.driver.write(&frame);
                if fate == Fate::Duplicate {
                    // Same tag twice; the driver's dedup window absorbs it.
                    self.driver.write(&frame);
                }
                let held = self.holds[slot].lock().expect("hold lock").take();
                if let Some(h) = held {
                    // The held frame is overtaken: written after.
                    self.driver.write(&h);
                }
            }
            Fate::Delay(ms) => {
                let due = Instant::now() + Duration::from_millis(u64::from(ms));
                let guard = self.delayer.lock().expect("delayer lock");
                if let Some(tx) = guard.as_ref() {
                    let _ = tx.send(DelayedFrame { due, frame });
                }
            }
        }
    }

    fn on_crash(&self) {
        // Volatile transport state dies with the server: every connection
        // loop observes the bumped epoch and resets its dedup window before
        // admitting its next frame.
        self.dedup_epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn flush(&self) {
        let held: Vec<Frame> = self
            .holds
            .iter()
            .filter_map(|h| h.lock().expect("hold lock").take())
            .collect();
        for frame in held {
            self.driver.write(&frame);
        }
        *self.delayer.lock().expect("delayer lock") = None;
        if let Some(h) = self
            .delayer_handle
            .lock()
            .expect("delayer handle lock")
            .take()
        {
            let _ = h.join();
        }
    }

    fn stats(&self) -> TransportStats {
        self.injector.lock().expect("injector lock").stats()
    }

    fn coverage(&self) -> Coverage {
        self.injector.lock().expect("injector lock").coverage()
    }
}
