//! Tagged request/reply bookkeeping for socket transports.
//!
//! Every frame a process sends carries a fresh monotonic tag; replies echo
//! the request's tag in their `re` header field. Three small pieces make
//! that usable under fault injection:
//!
//! - [`TagGen`]: the per-process tag source (never issues 0 — `re = 0`
//!   means "unsolicited").
//! - [`ReplyRouter`]: maps outstanding request tags to the client lane that
//!   issued them, so a server's reply frame can be routed to the right
//!   client mailbox no matter which connection it arrived on. Tags are
//!   retired wholesale at each operation boundary ([`ReplyRouter::begin_op`])
//!   — straggler replies to a finished operation then miss the table and
//!   are dropped, counted as `net.rpc.tag_mismatch_drops`.
//! - [`DedupWindow`]: per-connection duplicate suppression. The socket
//!   tier realizes a `Duplicate` fate by writing the same tagged frame
//!   twice, so the *receiver* must be the one to observe-and-drop, counted
//!   as `net.rpc.dedup_drops` — mirroring how a real stack would absorb a
//!   retransmitted datagram.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic frame-tag source; process-local, starts at 1 (0 is the
/// "unsolicited" sentinel in `re` headers).
#[derive(Debug)]
pub struct TagGen(AtomicU64);

impl TagGen {
    /// A fresh generator whose first tag is 1.
    #[must_use]
    pub fn new() -> TagGen {
        TagGen(AtomicU64::new(1))
    }

    /// The next tag.
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for TagGen {
    fn default() -> TagGen {
        TagGen::new()
    }
}

/// Routes reply frames (by their `re` header) back to the client lane
/// whose request they answer.
pub struct ReplyRouter {
    /// Outstanding request tag → client lane index.
    map: Mutex<HashMap<u64, usize>>,
    /// Tags registered by each lane's current operation, retired together
    /// when the lane starts its next operation.
    per_lane: Vec<Mutex<Vec<u64>>>,
}

impl ReplyRouter {
    /// A router for `lanes` concurrent clients.
    #[must_use]
    pub fn new(lanes: usize) -> ReplyRouter {
        ReplyRouter {
            map: Mutex::new(HashMap::new()),
            per_lane: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Starts a new operation on `lane`: retires every tag the lane's
    /// previous operation registered. Replies to those tags arriving later
    /// (duplicates, stragglers from dropped quorum rounds) miss the table
    /// and are counted as tag mismatches by the caller.
    pub fn begin_op(&self, lane: usize) {
        let mut mine = self.per_lane[lane].lock().expect("router lane lock");
        if mine.is_empty() {
            return;
        }
        let mut map = self.map.lock().expect("router map lock");
        for tag in mine.drain(..) {
            map.remove(&tag);
        }
    }

    /// Registers an outstanding request `tag` issued by `lane`.
    pub fn register(&self, lane: usize, tag: u64) {
        self.per_lane[lane]
            .lock()
            .expect("router lane lock")
            .push(tag);
        self.map.lock().expect("router map lock").insert(tag, lane);
    }

    /// The lane that issued request `re`, if it is still outstanding.
    /// (The tag stays live: quorum operations accept several replies to
    /// one broadcast round's tags, and retransmitted requests may earn
    /// more than one answer.)
    #[must_use]
    pub fn route(&self, re: u64) -> Option<usize> {
        self.map.lock().expect("router map lock").get(&re).copied()
    }
}

/// Sliding-window duplicate suppression for one connection: remembers the
/// last `cap` frame tags seen and rejects repeats.
#[derive(Debug)]
pub struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl DedupWindow {
    /// A window remembering the last `cap` tags.
    #[must_use]
    pub fn new(cap: usize) -> DedupWindow {
        DedupWindow {
            seen: HashSet::with_capacity(cap),
            order: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Admits `tag` if unseen within the window; `false` means drop the
    /// frame as a duplicate.
    pub fn admit(&mut self, tag: u64) -> bool {
        if !self.seen.insert(tag) {
            return false;
        }
        self.order.push_back(tag);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    /// Forgets every remembered tag. Called when the server process models
    /// an amnesia crash: dedup state is volatile, so a recovered server
    /// must treat the first retransmission of a pre-crash tag as fresh —
    /// keeping stale entries would silently eat the retry that the crash
    /// itself made necessary.
    pub fn reset(&mut self) {
        self.seen.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_monotonic_and_never_zero() {
        let g = TagGen::new();
        let a = g.next();
        let b = g.next();
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn router_routes_while_outstanding_and_retires_at_op_boundary() {
        let r = ReplyRouter::new(2);
        r.register(0, 10);
        r.register(1, 11);
        assert_eq!(r.route(10), Some(0));
        assert_eq!(r.route(10), Some(0), "tag stays live across reads");
        assert_eq!(r.route(11), Some(1));
        assert_eq!(r.route(99), None, "unknown tag is a mismatch");
        r.begin_op(0);
        assert_eq!(r.route(10), None, "lane 0's tags retired");
        assert_eq!(r.route(11), Some(1), "lane 1 untouched");
    }

    #[test]
    fn dedup_window_drops_repeats_and_forgets_past_capacity() {
        let mut w = DedupWindow::new(3);
        assert!(w.admit(1));
        assert!(!w.admit(1), "immediate duplicate dropped");
        assert!(w.admit(2));
        assert!(w.admit(3));
        assert!(w.admit(4), "window slides");
        assert!(
            w.admit(1),
            "tag 1 evicted after 3 newer tags — admitted again"
        );
        assert!(!w.admit(4));
    }

    #[test]
    fn dedup_window_reset_forgets_everything() {
        let mut w = DedupWindow::new(4);
        assert!(w.admit(7));
        assert!(!w.admit(7));
        w.reset();
        assert!(
            w.admit(7),
            "a reset window must re-admit pre-crash tags — the retransmit \
             after recovery is the frame that matters"
        );
        assert!(!w.admit(7), "dedup resumes normally after the reset");
    }
}
