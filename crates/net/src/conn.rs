//! Address parsing and the TCP / Unix-domain-socket stream abstraction.
//!
//! One syntax rule: an address containing `/` is a Unix-domain socket path,
//! anything else is `host:port` TCP. Loopback chaos runs (and the CI
//! `net-smoke` job) use UDS for speed and hermeticity; TCP exists for
//! spreading servers across hosts.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A listen/dial address: TCP `host:port` or a Unix-domain socket path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// A TCP endpoint, kept as the literal `host:port` string.
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl Addr {
    /// Parses an address: anything containing `/` is a UDS path, the rest
    /// is TCP `host:port`.
    #[must_use]
    pub fn parse(s: &str) -> Addr {
        if s.contains('/') {
            Addr::Uds(PathBuf::from(s))
        } else {
            Addr::Tcp(s.to_string())
        }
    }

    /// `"tcp"` or `"uds"` — used in logs and the chaos summary.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Addr::Tcp(_) => "tcp",
            Addr::Uds(_) => "uds",
        }
    }

    /// Binds a listener on this address. A stale UDS socket file from a
    /// previous run is removed first — the common crash-restart case.
    ///
    /// # Errors
    ///
    /// The underlying bind error.
    pub fn listen(&self) -> io::Result<Listener> {
        match self {
            Addr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            Addr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(UnixListener::bind(path)?))
            }
        }
    }

    /// Connects once.
    ///
    /// # Errors
    ///
    /// The underlying connect error.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Addr::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Addr::Uds(path) => Ok(Stream::Uds(UnixStream::connect(path)?)),
        }
    }

    /// Connects, retrying on refusal until `window` elapses — covers the
    /// startup race where a driver dials servers that are still binding.
    ///
    /// # Errors
    ///
    /// The last connect error once the window is spent.
    pub fn connect_retry(&self, window: Duration) -> io::Result<Stream> {
        let deadline = Instant::now() + window;
        loop {
            match self.connect() {
                Ok(s) => return Ok(s),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "{hp}"),
            Addr::Uds(path) => write!(f, "{}", path.display()),
        }
    }
}

/// A connected byte stream over either backend.
#[derive(Debug)]
pub enum Stream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix domain socket.
    Uds(UnixStream),
}

impl Stream {
    /// A second handle on the same connection (reader/writer split).
    ///
    /// # Errors
    ///
    /// The underlying clone error.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            Stream::Uds(s) => Ok(Stream::Uds(s.try_clone()?)),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A bound listener over either backend.
#[derive(Debug)]
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix domain socket.
    Uds(UnixListener),
}

impl Listener {
    /// Accepts one connection (TCP connections get `TCP_NODELAY`).
    ///
    /// # Errors
    ///
    /// The underlying accept error.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Uds(s))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_distinguishes_uds_from_tcp() {
        assert_eq!(
            Addr::parse("127.0.0.1:9000"),
            Addr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(Addr::parse("localhost:80").kind(), "tcp");
        assert_eq!(
            Addr::parse("/tmp/s0.sock"),
            Addr::Uds(PathBuf::from("/tmp/s0.sock"))
        );
        assert_eq!(Addr::parse("./rel/s.sock").kind(), "uds");
    }

    #[test]
    fn uds_listen_connect_round_trip_and_stale_socket_cleanup() {
        let dir = std::env::temp_dir().join(format!("blunt-net-conn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = Addr::Uds(dir.join("rt.sock"));
        // Bind twice: the second listen must clear the stale file.
        for _ in 0..2 {
            let l = addr.listen().unwrap();
            let mut cl = addr.connect_retry(Duration::from_secs(1)).unwrap();
            let mut sv = l.accept().unwrap();
            cl.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            sv.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"ping");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
