//! Fault-schedule coverage: which fault patterns a run *actually*
//! exercised, per directed link.
//!
//! The fault plan is a pure function of the seed, but whether a given seed
//! ever, say, partitions the `client-4 → server-1` link depends on rates,
//! window shapes, and run length. A soak that never fired a reorder is a
//! weaker witness than its green check mark suggests. The bus therefore
//! tallies every [`Fate`](crate::fault::Fate) decision into a per-link
//! [`LinkCoverage`] under the same lock that decides fates, making the
//! resulting [`Coverage`] deterministic for a fixed seed — two same-seed
//! runs serialize to byte-identical coverage JSON, and the `chaos` binary
//! embeds it in its machine-readable run summary.

use std::collections::BTreeSet;

use blunt_obs::Json;

/// Fate tallies for one directed link, plus the distinct crash/partition
/// windows its traffic fell into.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkCoverage {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// First-transmission messages offered to the injector on this link.
    pub offered: u64,
    /// Delivered normally.
    pub delivered: u64,
    /// Silently dropped.
    pub dropped: u64,
    /// Delivered twice.
    pub duplicated: u64,
    /// Swapped with the link's next message.
    pub reordered: u64,
    /// Held back before delivery.
    pub delayed: u64,
    /// Lost to a destination-server crash blackout.
    pub crash_dropped: u64,
    /// Lost to a network partition window.
    pub partition_dropped: u64,
    /// Distinct crash windows (cycle numbers) this link's traffic hit.
    pub crash_windows: BTreeSet<u64>,
    /// Distinct partition windows this link's traffic crossed.
    pub partition_windows: BTreeSet<u64>,
}

impl LinkCoverage {
    fn to_json(&self) -> Json {
        let windows = |set: &BTreeSet<u64>| Json::Arr(set.iter().map(|w| Json::UInt(*w)).collect());
        Json::Obj(vec![
            ("src".into(), Json::UInt(u64::from(self.src))),
            ("dst".into(), Json::UInt(u64::from(self.dst))),
            ("offered".into(), Json::UInt(self.offered)),
            ("delivered".into(), Json::UInt(self.delivered)),
            ("dropped".into(), Json::UInt(self.dropped)),
            ("duplicated".into(), Json::UInt(self.duplicated)),
            ("reordered".into(), Json::UInt(self.reordered)),
            ("delayed".into(), Json::UInt(self.delayed)),
            ("crash_dropped".into(), Json::UInt(self.crash_dropped)),
            (
                "partition_dropped".into(),
                Json::UInt(self.partition_dropped),
            ),
            ("crash_windows".into(), windows(&self.crash_windows)),
            ("partition_windows".into(), windows(&self.partition_windows)),
        ])
    }
}

/// The fault-schedule coverage of one run: per-link tallies plus the window
/// shape that generated them. Pure function of the seed for a fixed
/// configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Links with at least one offered message, ascending by `(src, dst)`.
    pub links: Vec<LinkCoverage>,
    /// The configured crash window length (link indices; 0 = disabled).
    pub crash_len: u64,
    /// The configured crash window period.
    pub crash_period: u64,
    /// The configured partition window length (0 = disabled).
    pub partition_len: u64,
    /// The configured partition window period.
    pub partition_period: u64,
}

impl Coverage {
    /// Aggregate fate totals over all links, in a fixed label order.
    #[must_use]
    pub fn fate_totals(&self) -> [(&'static str, u64); 7] {
        let sum = |f: fn(&LinkCoverage) -> u64| self.links.iter().map(f).sum();
        [
            ("deliver", sum(|l| l.delivered)),
            ("drop", sum(|l| l.dropped)),
            ("duplicate", sum(|l| l.duplicated)),
            ("reorder", sum(|l| l.reordered)),
            ("delay", sum(|l| l.delayed)),
            ("crash_drop", sum(|l| l.crash_dropped)),
            ("partition_drop", sum(|l| l.partition_dropped)),
        ]
    }

    /// The fault patterns this run actually exercised (nonzero totals).
    #[must_use]
    pub fn fates_exercised(&self) -> Vec<&'static str> {
        self.fate_totals()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, _)| *name)
            .collect()
    }

    /// Serializes as one `coverage` JSON object (see `docs/OBS_SCHEMA.md`).
    /// Deterministic: links ascending by `(src, dst)`, window sets sorted.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("coverage".into())),
            (
                "window_shape".into(),
                Json::Obj(vec![
                    ("crash_len".into(), Json::UInt(self.crash_len)),
                    ("crash_period".into(), Json::UInt(self.crash_period)),
                    ("partition_len".into(), Json::UInt(self.partition_len)),
                    ("partition_period".into(), Json::UInt(self.partition_period)),
                ]),
            ),
            (
                "fates".into(),
                Json::Obj(
                    self.fate_totals()
                        .iter()
                        .map(|(name, n)| ((*name).into(), Json::UInt(*n)))
                        .collect(),
                ),
            ),
            (
                "links".into(),
                Json::Arr(self.links.iter().map(LinkCoverage::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coverage {
        let mut a = LinkCoverage {
            src: 3,
            dst: 0,
            offered: 10,
            delivered: 7,
            dropped: 2,
            crash_dropped: 1,
            ..LinkCoverage::default()
        };
        a.crash_windows.insert(2);
        a.crash_windows.insert(0);
        let b = LinkCoverage {
            src: 0,
            dst: 3,
            offered: 5,
            delivered: 4,
            delayed: 1,
            ..LinkCoverage::default()
        };
        Coverage {
            links: vec![b, a],
            crash_len: 8,
            crash_period: 200,
            partition_len: 6,
            partition_period: 150,
        }
    }

    #[test]
    fn fate_totals_aggregate_over_links() {
        let c = sample();
        let totals: std::collections::BTreeMap<_, _> = c.fate_totals().into_iter().collect();
        assert_eq!(totals["deliver"], 11);
        assert_eq!(totals["drop"], 2);
        assert_eq!(totals["crash_drop"], 1);
        assert_eq!(totals["partition_drop"], 0);
        assert_eq!(
            c.fates_exercised(),
            vec!["deliver", "drop", "delay", "crash_drop"]
        );
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let c = sample();
        let j = c.to_json().to_string();
        assert_eq!(j, c.to_json().to_string());
        assert!(j.contains("\"type\":\"coverage\""));
        assert!(j.contains("\"crash_windows\":[0,2]"), "sorted windows: {j}");
        assert!(j.contains("\"window_shape\""));
        // Round-trips through the JSON parser.
        assert!(blunt_obs::Json::parse(&j).is_ok());
    }
}
