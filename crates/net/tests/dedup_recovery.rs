//! Regression test for dedup-window staleness across server recovery.
//!
//! The server's per-connection dedup window is volatile state: an amnesia
//! crash must wipe it along with the register cache and pending acks.
//! Before the fix, the window survived [`Transport::on_crash`], so a
//! pre-crash client retransmitting an already-admitted tag was silently
//! dropped as a duplicate — starving recovery of exactly the retries it
//! depends on. This drives a real `NetServer` over a loopback UDS socket:
//! deliver a tagged frame, prove the duplicate is absorbed, crash the
//! transport, and prove the same tag is admitted again.

use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use blunt_abd::msg::AbdMsg;
use blunt_core::ids::{ObjId, Pid};
use blunt_net::frame::{write_frame, Frame, DRIVER_NODE};
use blunt_net::{Addr, Envelope, FaultConfig, NetServer, NetServerCfg, Transport};
use blunt_obs::FlightRecorder;

#[test]
fn server_recovery_resets_the_dedup_window() {
    let dir = std::env::temp_dir().join(format!("blunt-dedup-reset-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let listen = Addr::parse(dir.join("s0.sock").to_str().expect("utf-8 path"));
    let cfg = NetServerCfg {
        listen: listen.clone(),
        me: Pid(0),
        servers: 1,
        clients: 1,
        peers: vec![listen.clone()],
        seed: 1,
        faults: FaultConfig::none(),
    };
    let (server, mailbox) =
        NetServer::bind(&cfg, Arc::new(FlightRecorder::new(256))).expect("bind UDS listener");

    // Dial in as the driver and speak the frame protocol directly, so we
    // control the tags byte-for-byte.
    let mut stream = listen.connect_retry(Duration::from_secs(5)).expect("dial");
    write_frame(
        &mut stream,
        &Frame::Hello {
            node: DRIVER_NODE,
            t_us: 0,
        },
    )
    .expect("hello");
    let env = Envelope::abd(
        Pid(1),
        Pid(0),
        AbdMsg::Query {
            obj: ObjId(0),
            sn: 7,
        },
        false,
    );
    let tagged = Frame::Env {
        tag: 42,
        re: 0,
        env: env.clone(),
    };

    // First delivery of tag 42 is admitted into the mailbox.
    write_frame(&mut stream, &tagged).expect("send tagged frame");
    mailbox
        .recv_timeout(Duration::from_secs(5))
        .expect("first delivery admitted");

    // The same tag again is a duplicate: absorbed, never delivered.
    write_frame(&mut stream, &tagged).expect("resend tagged frame");
    assert_eq!(
        mailbox.recv_timeout(Duration::from_millis(300)),
        Err(RecvTimeoutError::Timeout),
        "a duplicate tag must be absorbed by the dedup window"
    );

    // An amnesia crash wipes the window: the pre-crash client's
    // retransmission of tag 42 must be admitted again, not dropped.
    let resets_before = blunt_obs::counter("net.rpc.dedup_resets").get();
    server.on_crash();
    write_frame(&mut stream, &tagged).expect("retransmit after crash");
    mailbox
        .recv_timeout(Duration::from_secs(5))
        .expect("post-crash retransmission admitted — dedup state must not survive the crash");
    assert!(
        blunt_obs::counter("net.rpc.dedup_resets").get() > resets_before,
        "the reset is observable as net.rpc.dedup_resets"
    );

    write_frame(&mut stream, &Frame::Shutdown).expect("shutdown");
    drop(stream);
}
