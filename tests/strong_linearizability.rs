//! Cross-crate integration: (tail) strong linearizability on execution
//! trees built from **real system traces** (experiment E7).
//!
//! The centerpiece reproduces the paper's Sections 3/5.1 story end to end:
//! the two branches of the Figure 1 adversary, recorded from the actual ABD
//! implementation, form an execution tree that
//!
//! - **refutes strong linearizability** (no prefix-preserving linearization
//!   exists — the common prefix would have to commit to both write orders),
//!   and
//! - **satisfies tail strong linearizability w.r.t. `Π_ABD`** (the
//!   problematic prefix is not Π-complete: `p0`'s write and `p2`'s read are
//!   still inside their query phases there, so `f` need not be defined on
//!   it).

use blunting::adversary::fig1::fig1_script;
use blunting::core::ids::{MethodId, ObjId};
use blunting::core::spec::RegisterSpec;
use blunting::core::value::Val;
use blunting::lincheck::strong::check_strong;
use blunting::lincheck::tree::ExecTree;
use blunting::sim::kernel::run;
use blunting::sim::rng::{SplitMix64, Tape};
use blunting::sim::sched::RandomScheduler;
use blunting::sim::trace::Trace;

fn fig1_traces() -> Vec<Trace> {
    (0..2usize)
        .map(|coin| {
            run(
                blunting::abd::scenarios::weakener_abd(1),
                &mut fig1_script(coin),
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap()
            .trace
        })
        .collect()
}

#[test]
fn abd_fig1_tree_refutes_strong_linearizability() {
    let traces = fig1_traces();
    // Π₀: every method has an empty preamble, i.e. plain strong
    // linearizability.
    let tree = ExecTree::build(&traces, ObjId(0), |_| false);
    assert!(tree.leaves().len() >= 2, "the coin must split the tree");
    assert!(
        !check_strong(&tree, &RegisterSpec::new(Val::Nil)),
        "ABD's Figure 1 branches admit no prefix-preserving linearization"
    );
}

#[test]
fn abd_fig1_tree_is_tail_strongly_linearizable_wrt_pi_abd() {
    let traces = fig1_traces();
    // Π_ABD: Read and Write both have the query phase as preamble.
    let tree = ExecTree::build(&traces, ObjId(0), |m| {
        m == MethodId::READ || m == MethodId::WRITE
    });
    assert!(
        check_strong(&tree, &RegisterSpec::new(Val::Nil)),
        "restricted to Π_ABD-complete executions the same tree is fine (Theorem 5.1)"
    );
}

/// Builds a tree from `n` seeded random-schedule executions of a system.
fn sampled_tree<S, F>(mk: F, obj: ObjId, seeds: u64, preamble: fn(MethodId) -> bool) -> ExecTree
where
    S: blunting::sim::system::System,
    F: Fn() -> S,
{
    let traces: Vec<Trace> = (0..seeds)
        .map(|seed| {
            run(
                mk(),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed ^ 0x77),
                true,
                200_000,
            )
            .unwrap()
            .trace
        })
        .collect();
    ExecTree::build(&traces, obj, preamble)
}

fn rw_preamble(m: MethodId) -> bool {
    m == MethodId::READ || m == MethodId::WRITE
}

fn read_preamble(m: MethodId) -> bool {
    m == MethodId::READ
}

#[test]
fn abd_fig1_tree_also_refutes_write_strong_linearizability() {
    // Section 6 of the paper (citing Hadzilacos–Hu–Toueg PODC'21): neither
    // the multi-writer ABD nor its preamble-iterated version is WSL. The
    // same Figure 1 branches witness it: the common prefix must commit the
    // two writes' order (both are pending but W1 has returned), yet branch A
    // needs W0 < W1 and branch B needs W1 < W0.
    use blunting::lincheck::wsl::{check_wsl, register_writes};
    let traces = fig1_traces();
    let tree = ExecTree::build(&traces, ObjId(0), |_| false);
    assert!(
        !check_wsl(&tree, &RegisterSpec::new(Val::Nil), register_writes),
        "multi-writer ABD must not be write strongly linearizable"
    );
}

#[test]
fn iterated_abd_fig1_style_tree_is_not_wsl_either() {
    // The paper notes the preamble-iterated version is not WSL either; the
    // k = 1 witness embeds into every k (same histories are reachable), so
    // the refutation above covers O^k as well. Here we additionally verify
    // WSL *holds* on single-writer sampled trees (single-writer registers
    // are trivially WSL).
    use blunting::lincheck::wsl::{check_wsl, register_writes};
    let traces: Vec<Trace> = (0..8)
        .map(|seed| {
            run(
                blunting::registers::scenarios::sw_weakener_il(1),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                true,
                200_000,
            )
            .unwrap()
            .trace
        })
        .collect();
    let tree = ExecTree::build(&traces, ObjId(0), |_| false);
    assert!(
        check_wsl(&tree, &RegisterSpec::new(Val::Nil), register_writes),
        "single-writer registers are trivially WSL"
    );
}

#[test]
fn abd_sampled_trees_are_tail_strongly_linearizable() {
    // Theorem 5.1 predicts the Π_ABD check passes on *any* tree of ABD
    // executions; sampled trees exercise it beyond the hand-picked pair.
    let tree = sampled_tree(
        || blunting::abd::scenarios::weakener_abd(1),
        ObjId(0),
        12,
        rw_preamble,
    );
    assert!(check_strong(&tree, &RegisterSpec::new(Val::Nil)));
}

#[test]
fn va_sampled_trees_are_tail_strongly_linearizable() {
    // Section 5.3: VA's read preamble ends just before its return, the
    // write's just before its install — both are marked by the
    // implementation, so Π-completeness uses both methods.
    let tree = sampled_tree(
        || blunting::registers::scenarios::weakener_va(1),
        ObjId(0),
        12,
        rw_preamble,
    );
    assert!(check_strong(&tree, &RegisterSpec::new(Val::Nil)));
}

#[test]
fn il_sampled_trees_are_tail_strongly_linearizable() {
    // Section 5.4: IL's write preamble is empty; only reads have one.
    let tree = sampled_tree(
        || blunting::registers::scenarios::sw_weakener_il(1),
        ObjId(0),
        12,
        read_preamble,
    );
    assert!(check_strong(&tree, &RegisterSpec::new(Val::Nil)));
}

#[test]
fn iterated_abd_trees_remain_tail_strongly_linearizable() {
    // The transformation preserves tail strong linearizability (the tail is
    // unchanged; extra preamble iterations only delay Π-completeness).
    let tree = sampled_tree(
        || blunting::abd::scenarios::weakener_abd(2),
        ObjId(0),
        10,
        rw_preamble,
    );
    assert!(check_strong(&tree, &RegisterSpec::new(Val::Nil)));
}

#[test]
fn snapshot_sampled_trees_are_tail_strongly_linearizable() {
    use blunting::core::spec::SnapshotSpec;
    // Section 5.2: Scan's preamble covers everything before its return;
    // Update's is empty under the default mapping.
    let traces: Vec<Trace> = (0..10)
        .map(|seed| {
            run(
                blunting::registers::scenarios::ghw_snapshot(1),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed ^ 0x99),
                true,
                200_000,
            )
            .unwrap()
            .trace
        })
        .collect();
    let tree = ExecTree::build(&traces, ObjId(0), |m| m == MethodId::SCAN);
    assert!(check_strong(&tree, &SnapshotSpec::new(3, Val::Nil)));
}
