//! Cross-crate integration: every implementation in the workspace produces
//! only linearizable histories (experiment E6 — Theorem 4.1's equivalence
//! of `O^k` and `O` at the level of observable histories).
//!
//! Each test runs a composed system under many seeded random schedules,
//! projects the trace's history per object (linearizability is local), and
//! checks it with the Wing–Gong–Lowe search against the object's sequential
//! specification.

use blunting::core::history::History;
use blunting::core::ids::ObjId;
use blunting::core::spec::{RegisterSpec, SnapshotSpec};
use blunting::core::value::Val;
use blunting::lincheck::wgl::check_linearizable;
use blunting::sim::kernel::run;
use blunting::sim::rng::SplitMix64;
use blunting::sim::sched::RandomScheduler;
use blunting::sim::system::System;
use blunting::sim::trace::Trace;

fn history_for<S: System>(sys: S, seed: u64, max_steps: usize) -> Trace {
    run(
        sys,
        &mut RandomScheduler::new(seed),
        &mut SplitMix64::new(seed ^ 0xABCD),
        true,
        max_steps,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
    .trace
}

fn assert_register_linearizable(h: &History, what: &str, seed: u64) {
    let spec = RegisterSpec::new(Val::Nil);
    assert!(
        check_linearizable(h, &spec).is_ok(),
        "{what} (seed {seed}): non-linearizable register history:\n{h}"
    );
}

#[test]
fn abd_histories_are_linearizable() {
    for k in [1u32, 2, 3] {
        for seed in 0..40 {
            let trace = history_for(blunting::abd::scenarios::weakener_abd(k), seed, 100_000);
            let h = trace.history().project(ObjId(0));
            assert_register_linearizable(&h, &format!("ABD^{k} on R"), seed);
        }
    }
}

#[test]
fn abd_fused_histories_are_linearizable() {
    for seed in 0..40 {
        let trace = history_for(
            blunting::abd::scenarios::weakener_abd_fused(2),
            seed,
            100_000,
        );
        let h = trace.history().project(ObjId(0));
        assert_register_linearizable(&h, "fused ABD² on R", seed);
    }
}

#[test]
fn abd_full_configuration_both_registers_linearizable() {
    for seed in 0..25 {
        let trace = history_for(
            blunting::abd::scenarios::weakener_abd_full(2),
            seed,
            200_000,
        );
        let h = trace.history();
        for obj in h.objects() {
            let proj = h.project(obj);
            // C is initialized to −1; use the matching spec per object.
            let initial = if obj == ObjId(1) {
                Val::Int(-1)
            } else {
                Val::Nil
            };
            let spec = RegisterSpec::new(initial);
            assert!(
                check_linearizable(&proj, &spec).is_ok(),
                "full ABD² {obj} (seed {seed}): non-linearizable:\n{proj}"
            );
        }
    }
}

#[test]
fn single_writer_abd_histories_are_linearizable() {
    use blunting::abd::config::ObjectConfig;
    use blunting::abd::system::{AbdSystem, AbdSystemDef};
    use blunting::core::ids::Pid;
    use blunting::programs::weakener::sw_weakener;

    for k in [1u32, 2] {
        for seed in 0..30 {
            let sys = AbdSystem::new(AbdSystemDef {
                program: sw_weakener(),
                objects: vec![
                    ObjectConfig::abd_single_writer(k, Pid(0), Val::Nil),
                    ObjectConfig::atomic(Val::Int(-1)),
                ],
                purge_stale: true,
                fused_rpc: false,
            });
            let trace = history_for(sys, seed, 100_000);
            let h = trace.history().project(ObjId(0));
            assert_register_linearizable(&h, &format!("SW-ABD^{k} on R"), seed);
        }
    }
}

#[test]
fn vitanyi_awerbuch_histories_are_linearizable() {
    for k in [1u32, 2] {
        for seed in 0..40 {
            let trace = history_for(
                blunting::registers::scenarios::weakener_va(k),
                seed,
                200_000,
            );
            let h = trace.history().project(ObjId(0));
            assert_register_linearizable(&h, &format!("VA^{k} on R"), seed);
        }
    }
}

#[test]
fn israeli_li_histories_are_linearizable() {
    for k in [1u32, 2] {
        for seed in 0..40 {
            let trace = history_for(
                blunting::registers::scenarios::sw_weakener_il(k),
                seed,
                200_000,
            );
            let h = trace.history().project(ObjId(0));
            assert_register_linearizable(&h, &format!("IL^{k} on R"), seed);
        }
    }
}

#[test]
fn snapshot_histories_are_linearizable() {
    for k in [1u32, 2] {
        for seed in 0..40 {
            let trace = history_for(
                blunting::registers::scenarios::ghw_snapshot(k),
                seed,
                200_000,
            );
            let h = trace.history().project(ObjId(0));
            let spec = SnapshotSpec::new(3, Val::Nil);
            assert!(
                check_linearizable(&h, &spec).is_ok(),
                "snapshot^{k} (seed {seed}): non-linearizable:\n{h}"
            );
        }
    }
}

#[test]
fn snapshot_with_extended_update_preamble_is_linearizable() {
    use blunting::programs::ghw;
    use blunting::registers::system::{ShmObjectConfig, ShmSystem, ShmSystemDef};

    for seed in 0..30 {
        let sys = ShmSystem::new(ShmSystemDef {
            program: ghw::snapshot_weakener(),
            objects: vec![
                ShmObjectConfig::Snapshot {
                    k: 2,
                    components: 3,
                    initial: Val::Nil,
                    update_preamble: true,
                },
                ShmObjectConfig::AtomicRegister {
                    initial: Val::Int(-1),
                },
            ],
        });
        let trace = history_for(sys, seed, 200_000);
        let h = trace.history().project(ObjId(0));
        let spec = SnapshotSpec::new(3, Val::Nil);
        assert!(
            check_linearizable(&h, &spec).is_ok(),
            "snapshot² (extended Π) seed {seed}: non-linearizable:\n{h}"
        );
    }
}

#[test]
fn fig1_adversarial_histories_are_linearizable_too() {
    // Even the worst adversary cannot break linearizability — only strong
    // linearizability. The Figure 1 executions must pass the WGL check.
    use blunting::adversary::fig1::fig1_script;
    use blunting::sim::rng::Tape;

    for coin in 0..2usize {
        let report = run(
            blunting::abd::scenarios::weakener_abd(1),
            &mut fig1_script(coin),
            &mut Tape::new(vec![coin]),
            true,
            10_000,
        )
        .unwrap();
        let h = report.trace.history().project(ObjId(0));
        assert_register_linearizable(&h, &format!("Figure 1 (coin {coin})"), coin as u64);
    }
}

#[test]
fn round_based_histories_are_linearizable_per_round_register() {
    use blunting::abd::config::ObjectConfig;
    use blunting::abd::system::{AbdSystem, AbdSystemDef};
    use blunting::programs::round_based;

    let rounds = 2;
    for seed in 0..15 {
        let objects = (0..round_based::object_count(rounds))
            .map(|i| {
                if i % 2 == 0 {
                    ObjectConfig::abd(2, Val::Nil)
                } else {
                    ObjectConfig::atomic(Val::Int(-1))
                }
            })
            .collect();
        let sys = AbdSystem::new(AbdSystemDef {
            program: round_based::round_based(rounds),
            objects,
            purge_stale: true,
            fused_rpc: false,
        });
        let trace = history_for(sys, seed, 300_000);
        let h = trace.history();
        for obj in h.objects() {
            let initial = if obj.0 % 2 == 1 {
                Val::Int(-1)
            } else {
                Val::Nil
            };
            let proj = h.project(obj);
            let spec = RegisterSpec::new(initial);
            assert!(
                check_linearizable(&proj, &spec).is_ok(),
                "round-based {obj} (seed {seed}): non-linearizable:\n{proj}"
            );
        }
    }
}
