//! **blunting** — a reproduction of *"Blunting an Adversary Against
//! Randomized Concurrent Programs with Linearizable Implementations"*
//! (Attiya, Enea, Welch; PODC 2022) as a workspace of Rust crates.
//!
//! This façade crate re-exports the whole workspace under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `blunt-core` | histories, sequential specifications, preamble mappings, exact rationals, the Theorem 4.2 bound |
//! | [`sim`] | `blunt-sim` | the adversary-driven simulation substrate and the exact expectimax explorer |
//! | [`programs`] | `blunt-programs` | randomized programs as data; the weakener (Algorithm 1) and friends |
//! | [`abd`] | `blunt-abd` | the ABD register, `ABD^k`, and composed message-passing systems |
//! | [`registers`] | `blunt-registers` | shared-memory constructions (Afek snapshot, Vitányi–Awerbuch, Israeli–Li) and the generic preamble-iterating combinator |
//! | [`lincheck`] | `blunt-lincheck` | linearizability / strong / tail-strong / write-strong checkers |
//! | [`adversary`] | `blunt-adversary` | the scripted Figure 1 adversary and adversary-power measurements |
//! | [`trace`] | `blunt-trace` | happens-before analysis, space-time diagrams, adversary decision explainability, bench regression gate |
//!
//! # Example
//!
//! The paper's Appendix A.1 claim — with atomic registers, the weakener's
//! bad-outcome probability is exactly 1/2 under the optimal strong
//! adversary — computed as an exact game value:
//!
//! ```
//! use blunting::abd::scenarios::weakener_atomic;
//! use blunting::core::ratio::Ratio;
//! use blunting::programs::weakener::is_bad;
//! use blunting::sim::explore::{worst_case_prob, ExploreBudget};
//!
//! let (p, _) = worst_case_prob(&weakener_atomic(), &is_bad,
//!                              &ExploreBudget::default()).unwrap();
//! assert_eq!(p, Ratio::new(1, 2));
//! ```
//!
//! See the repository `README.md`, `DESIGN.md`, and `EXPERIMENTS.md` for the
//! full map, and `examples/` for runnable tours.

#![forbid(unsafe_code)]

pub use blunt_abd as abd;
pub use blunt_adversary as adversary;
pub use blunt_core as core;
pub use blunt_lincheck as lincheck;
pub use blunt_programs as programs;
pub use blunt_registers as registers;
pub use blunt_sim as sim;
pub use blunt_trace as trace;
